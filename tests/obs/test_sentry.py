"""Perf-regression sentry: robust bands, machine normalization, CLI.

The statistics under test: per-kernel median ± max(4·1.4826·MAD,
0.3·median) bands over the normalized trajectory history, with
``insufficient`` (never-failing) verdicts below ``min_points``, and the
frozen-reference machine normalization that makes a uniformly slower
machine judge identically to the one that wrote the history.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.sentry import (
    KernelVerdict,
    SentryVerdict,
    evaluate,
    main,
    normalization_factor,
)
from repro.profiling.perfbench import PerfRecord, write_bench, write_trajectory

NBYTES = 1_000_000


def _record(
    codec="huffman",
    op="decode",
    shape="terabyte",
    mbps=100.0,
    machine_scale=1.0,
):
    """One kernel record as measured on a machine ``machine_scale`` times
    slower than the reference box (throughput drops, reference wall time
    grows, by the same factor)."""
    seconds = NBYTES / (mbps * 1e6) * machine_scale
    return PerfRecord(
        codec=codec,
        op=op,
        shape_name=shape,
        rows=2048,
        dim=32,
        input_nbytes=NBYTES,
        seconds=seconds,
        throughput_mb_s=mbps / machine_scale,
        reference_seconds=0.01 * machine_scale,
        speedup=None,
    )


def _history(mbps_points, **kwargs):
    return [[_record(mbps=m, **kwargs)] for m in mbps_points]


class TestEvaluate:
    def test_in_band_is_ok(self):
        verdict = evaluate(_history([100, 102, 98]), [_record(mbps=100)])
        (kernel,) = verdict.kernels
        assert kernel.status == "ok"
        assert verdict.passed
        # width floor: max(4*1.4826*MAD(~2), 0.3*100) = 30
        assert kernel.band_low_mb_s == pytest.approx(70.0)
        assert kernel.band_high_mb_s == pytest.approx(130.0)

    def test_below_band_is_regression(self):
        verdict = evaluate(_history([100, 102, 98]), [_record(mbps=50)])
        (kernel,) = verdict.kernels
        assert kernel.status == "regression"
        assert not verdict.passed
        assert verdict.regressions == [kernel]

    def test_above_band_is_improvement_and_passes(self):
        verdict = evaluate(_history([100, 102, 98]), [_record(mbps=200)])
        (kernel,) = verdict.kernels
        assert kernel.status == "improvement"
        assert verdict.passed
        assert verdict.improvements == [kernel]

    def test_noisy_history_widens_the_band(self):
        # MAD over {60, 80, 100, 120, 140} is 20 -> sigma 29.65 -> width
        # 118.6 beats the 30 floor; 50 MB/s sits inside [-18.6, 218.6].
        verdict = evaluate(
            _history([60, 80, 100, 120, 140]), [_record(mbps=50)]
        )
        assert verdict.kernels[0].status == "ok"

    def test_short_history_is_insufficient_and_never_fails(self):
        verdict = evaluate(_history([100, 100]), [_record(mbps=1.0)])
        (kernel,) = verdict.kernels
        assert kernel.status == "insufficient"
        assert kernel.history_points == 2
        assert kernel.baseline_mb_s is None
        assert verdict.passed

    def test_unknown_kernel_is_insufficient_with_zero_points(self):
        verdict = evaluate(
            _history([100, 100, 100]), [_record(codec="brandnew", mbps=1.0)]
        )
        assert verdict.kernels[0].status == "insufficient"
        assert verdict.kernels[0].history_points == 0

    def test_min_points_guard(self):
        with pytest.raises(ValueError):
            evaluate([], [_record()], min_points=1)

    def test_warn_only_passes_with_regressions(self):
        verdict = evaluate(
            _history([100, 102, 98]), [_record(mbps=50)], warn_only=True
        )
        assert verdict.regressions
        assert verdict.passed
        assert verdict.to_json_dict()["status"] == "pass"
        assert "WARN" in verdict.summary()


class TestNormalization:
    def test_factor_is_reference_time_ratio(self):
        slow_run = [_record(machine_scale=3.0)]
        current = [_record()]
        assert normalization_factor(slow_run, current) == pytest.approx(3.0)

    def test_factor_defaults_to_one_without_common_references(self):
        no_ref = [
            PerfRecord(
                codec="x", op="y", shape_name="z", rows=1, dim=1,
                input_nbytes=1, seconds=1.0, throughput_mb_s=1.0,
            )
        ]
        assert normalization_factor(no_ref, [_record()]) == 1.0

    def test_slower_history_machine_judges_identically(self):
        """History written on a 3x slower box: normalization maps its
        throughputs onto the current machine, so the same relative
        verdicts come out."""
        slow_history = _history([100, 102, 98], machine_scale=3.0)
        assert evaluate(slow_history, [_record(mbps=100)]).kernels[0].status == "ok"
        assert (
            evaluate(slow_history, [_record(mbps=50)]).kernels[0].status
            == "regression"
        )

    def test_uniform_scaling_invariance(self):
        """Scaling one history run's wall times AND reference times by the
        same factor changes nothing — pure machine speed, not code."""
        base = evaluate(_history([100, 102, 98]), [_record(mbps=60)])
        scaled_history = [
            [_record(mbps=100, machine_scale=5.0)],
            [_record(mbps=102)],
            [_record(mbps=98)],
        ]
        scaled = evaluate(scaled_history, [_record(mbps=60)])
        assert scaled.kernels[0].status == base.kernels[0].status
        assert scaled.kernels[0].baseline_mb_s == pytest.approx(
            base.kernels[0].baseline_mb_s
        )


class TestVerdictShapes:
    def test_json_dict_schema(self):
        verdict = evaluate(
            _history([100, 102, 98]),
            [_record(mbps=50), _record(op="encode", mbps=1.0)],
        )
        doc = verdict.to_json_dict()
        assert doc["schema_version"] == 1
        assert doc["status"] == "fail"
        assert doc["warn_only"] is False
        assert doc["checked"] == 1  # the insufficient kernel is not checked
        assert len(doc["regressions"]) == 1
        assert len(doc["insufficient"]) == 1
        reg = doc["regressions"][0]
        assert {
            "codec", "op", "shape", "status", "throughput_mb_s",
            "history_points", "baseline_mb_s", "band_low_mb_s",
            "band_high_mb_s",
        } <= set(reg)

    def test_summary_lines(self):
        ok = evaluate(_history([100, 102, 98]), [_record(mbps=100)])
        assert ok.summary().startswith("sentry PASS")
        bad = evaluate(_history([100, 102, 98]), [_record(mbps=50)])
        assert bad.summary().startswith("sentry FAIL")
        assert "huffman.decode" in bad.summary()

    def test_kernel_verdict_json_omits_band_when_insufficient(self):
        kernel = KernelVerdict(
            codec="a", op="b", shape_name="c", status="insufficient",
            throughput_mb_s=1.0,
        )
        assert "baseline_mb_s" not in kernel.to_json_dict()

    def test_empty_verdict_passes(self):
        verdict = SentryVerdict(kernels=())
        assert verdict.passed
        assert "no kernels" in verdict.summary()


class TestCli:
    def _files(self, tmp_path, current_mbps):
        bench = tmp_path / "bench.json"
        write_trajectory([run for run in _history([100, 102, 98])], bench)
        current = tmp_path / "current.json"
        write_bench([_record(mbps=current_mbps)], current)
        return bench, current

    def test_pass_run_writes_verdict(self, tmp_path, capsys):
        bench, current = self._files(tmp_path, 100)
        out = tmp_path / "verdict.json"
        code = main(
            ["--bench", str(bench), "--current", str(current), "--out", str(out)]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["status"] == "pass"
        assert "sentry PASS" in capsys.readouterr().out

    def test_regression_fails_the_gate(self, tmp_path, capsys):
        bench, current = self._files(tmp_path, 50)
        code = main(["--bench", str(bench), "--current", str(current)])
        assert code == 1
        assert "sentry FAIL" in capsys.readouterr().out

    def test_warn_only_reports_but_passes(self, tmp_path, capsys):
        bench, current = self._files(tmp_path, 50)
        out = tmp_path / "verdict.json"
        code = main(
            [
                "--bench", str(bench), "--current", str(current),
                "--warn-only", "--out", str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["status"] == "pass"
        assert doc["warn_only"] is True
        assert doc["regressions"]
        assert "WARN" in capsys.readouterr().out

    def test_v1_bench_is_a_one_point_trajectory(self, tmp_path):
        bench = tmp_path / "v1.json"
        write_bench([_record(mbps=100)], bench)
        current = tmp_path / "current.json"
        write_bench([_record(mbps=1.0)], current)
        # One history point < min_points: insufficient, so the gate passes.
        code = main(["--bench", str(bench), "--current", str(current)])
        assert code == 0
