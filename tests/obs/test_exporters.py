"""Exporters: JSON and Prometheus round-trips, schema validation, run_report.

The two fidelity laws:

* JSON is lossless: ``snapshot_from_json(snapshot_to_json(s)) == s``.
* Prometheus keeps buckets but not reservoirs:
  ``from_prometheus(to_prometheus(s)) == s.scrub_exact()``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.exporters import (
    SNAPSHOT_SCHEMA_ID,
    SNAPSHOT_SCHEMA_V1,
    from_prometheus,
    reports_from_json,
    run_report,
    snapshot_from_json,
    snapshot_to_json,
    to_prometheus,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.schema import SnapshotSchemaError, validate_snapshot_json


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("wire_bytes_total", "bytes on the wire").inc(4096, stage="payload")
    reg.counter("wire_bytes_total").inc(128, stage="metadata")
    reg.gauge("queue_depth", "outstanding requests").set(3.0, replica="0")
    h = reg.histogram("latency_seconds", "request latency", bounds=(0.001, 0.01, 0.1))
    for v in (0.0004, 0.002, 0.05, 0.2):
        h.observe(v)
    reg.histogram("ratio", bounds=(2.0, 8.0)).observe(5.0, table="3")
    return reg


integral_values = st.integers(min_value=0, max_value=10**9).map(float)


def _build_registry(counter_incs, hist_obs):
    reg = MetricsRegistry()
    for label, v in counter_incs:
        reg.counter("ops_total").inc(v, kind=label)
    h = reg.histogram("dist", bounds=(1.0, 10.0, 100.0), exact_limit=8)
    for v in hist_obs:
        h.observe(v)
    return reg


registry_state = st.builds(
    _build_registry,
    st.lists(st.tuples(st.sampled_from("abc"), integral_values), max_size=4),
    st.lists(integral_values, max_size=12),
)


class TestJsonRoundTrip:
    def test_lossless(self):
        snap = populated_registry().snapshot()
        assert snapshot_from_json(snapshot_to_json(snap)) == snap

    def test_json_carries_schema_id(self):
        doc = json.loads(snapshot_to_json(populated_registry().snapshot()))
        assert doc["schema"] == SNAPSHOT_SCHEMA_ID

    def test_accepts_live_registry(self):
        reg = populated_registry()
        assert snapshot_from_json(snapshot_to_json(reg)) == reg.snapshot()

    @given(registry_state)
    @settings(max_examples=40, deadline=None)
    def test_lossless_property(self, reg):
        snap = reg.snapshot()
        assert snapshot_from_json(snapshot_to_json(snap)) == snap


class TestPrometheusRoundTrip:
    def test_scrub_law(self):
        snap = populated_registry().snapshot()
        assert from_prometheus(to_prometheus(snap)) == snap.scrub_exact()

    def test_exposition_shape(self):
        text = to_prometheus(populated_registry().snapshot())
        assert '# TYPE wire_bytes_total counter' in text
        assert 'wire_bytes_total{stage="payload"} 4096' in text
        assert '# TYPE latency_seconds histogram' in text
        assert 'latency_seconds_bucket{le="+Inf"} 4' in text
        assert "latency_seconds_count 4" in text

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("odd_total").inc(1, path='a\\b "c"\nd')
        snap = reg.snapshot()
        assert from_prometheus(to_prometheus(snap)) == snap.scrub_exact()

    def test_empty_label_set_round_trips(self):
        """A labelless series renders without braces and must come back
        as the empty label key, for every metric kind."""
        reg = MetricsRegistry()
        reg.counter("bare_total").inc(7)
        reg.gauge("bare_gauge").set(2.5)
        reg.histogram("bare_hist", bounds=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        text = to_prometheus(snap)
        assert "bare_total 7" in text
        assert "bare_total{" not in text
        assert from_prometheus(text) == snap.scrub_exact()

    @pytest.mark.parametrize("value", [
        "",                      # empty label value
        '"',                     # lone quote
        "\\",                    # lone backslash
        "\\\\",                  # double backslash
        'tail\\',                # backslash at end
        'a"b\\c\nd',             # all three escapables
        "\n\n",                  # newlines only
        "a,b}c{d",               # exposition syntax characters
        'le="0.5"',              # looks like a label pair itself
    ])
    def test_adversarial_label_values_round_trip(self, value):
        reg = MetricsRegistry()
        reg.counter("edge_total").inc(3, key=value)
        snap = reg.snapshot()
        assert from_prometheus(to_prometheus(snap)) == snap.scrub_exact()

    def test_adversarial_labels_on_histograms_round_trip(self):
        reg = MetricsRegistry()
        h = reg.histogram("edge_hist", bounds=(1.0, 10.0))
        h.observe(0.5, path='a\\b "c"\nd')
        h.observe(20.0, path='a\\b "c"\nd')
        snap = reg.snapshot()
        assert from_prometheus(to_prometheus(snap)) == snap.scrub_exact()

    @given(st.text(max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_label_value_round_trip_property(self, value):
        from repro.obs.exporters import _esc_label, _unesc_label

        assert _unesc_label(_esc_label(value)) == value

    @given(registry_state)
    @settings(max_examples=40, deadline=None)
    def test_scrub_law_property(self, reg):
        snap = reg.snapshot()
        assert from_prometheus(to_prometheus(snap)) == snap.scrub_exact()

    def test_both_exporters_agree_on_the_same_snapshot(self):
        """The acceptance criterion: one snapshot through both formats
        lands on the same bucket-level state."""
        snap = populated_registry().snapshot()
        via_json = snapshot_from_json(snapshot_to_json(snap))
        via_prom = from_prometheus(to_prometheus(snap))
        assert via_json.scrub_exact() == via_prom


class TestSchemaValidation:
    def test_valid_snapshot_passes(self):
        text = snapshot_to_json(populated_registry().snapshot())
        doc = validate_snapshot_json(text)
        assert doc["schema"] == SNAPSHOT_SCHEMA_ID

    def test_wrong_schema_id_rejected(self):
        doc = json.loads(snapshot_to_json(populated_registry().snapshot()))
        doc["schema"] = "something/else"
        with pytest.raises(SnapshotSchemaError):
            validate_snapshot_json(json.dumps(doc))

    def test_histogram_count_mismatch_rejected(self):
        doc = json.loads(snapshot_to_json(populated_registry().snapshot()))
        for family in doc["families"]:
            if family["kind"] == "histogram":
                family["series"][0]["histogram"]["count"] += 1
                break
        with pytest.raises(SnapshotSchemaError):
            validate_snapshot_json(json.dumps(doc))

    def test_duplicate_family_rejected(self):
        doc = json.loads(snapshot_to_json(populated_registry().snapshot()))
        doc["families"].append(doc["families"][0])
        with pytest.raises(SnapshotSchemaError):
            validate_snapshot_json(json.dumps(doc))

    def test_cli_main(self, tmp_path, capsys):
        from repro.obs.schema import main

        path = tmp_path / "metrics.json"
        path.write_text(snapshot_to_json(populated_registry().snapshot()))
        assert main([str(path)]) == 0
        assert "OK" in capsys.readouterr().out
        path.write_text("{}")
        assert main([str(path)]) != 0
        assert "INVALID" in capsys.readouterr().err


def _minimal_critical_path_block() -> dict:
    return {
        "train": {
            "makespan": 1.5,
            "attribution": [
                {"rank": 0, "stream": "compute", "category": "compress", "seconds": 1.0},
                {"rank": 1, "stream": "comm", "category": "alltoall_fwd", "seconds": 0.5},
            ],
            "steps": [
                {
                    "event_index": 0, "rank": 0, "stream": "compute",
                    "category": "compress", "start": 0.0, "end": 1.0,
                },
                {
                    "event_index": None, "rank": 1, "stream": "comm",
                    "category": "idle", "start": 1.0, "end": 1.5,
                },
            ],
        }
    }


def _minimal_slo_block() -> dict:
    from repro.obs.slo import BurnRateMonitor, SloHub, SLOSpec

    hub = SloHub(
        [
            BurnRateMonitor(
                SLOSpec(
                    name="serve_p99_latency", source="serve_latency",
                    threshold=1.0, objective=1.0,
                    fast_window=0.2, slow_window=1.0,
                )
            )
        ]
    )
    hub.feed("serve_latency", 0.5, 2.0)  # zero-budget breach -> "inf" burns
    return hub.to_json_dict()


class TestSchemaV2Migration:
    """v2 = v1 families + an optional ``reports`` block; both versions
    must keep parsing and validating."""

    def test_v1_document_still_parses(self):
        snap = populated_registry().snapshot()
        doc = json.loads(snapshot_to_json(snap))
        doc["schema"] = SNAPSHOT_SCHEMA_V1
        assert snapshot_from_json(json.dumps(doc)) == snap

    def test_v1_document_still_validates(self):
        doc = json.loads(snapshot_to_json(populated_registry().snapshot()))
        doc["schema"] = SNAPSHOT_SCHEMA_V1
        validate_snapshot_json(json.dumps(doc))

    def test_reports_block_requires_v2(self):
        doc = json.loads(
            snapshot_to_json(
                populated_registry().snapshot(),
                reports={"critical_path": _minimal_critical_path_block()},
            )
        )
        doc["schema"] = SNAPSHOT_SCHEMA_V1
        with pytest.raises(SnapshotSchemaError, match="reports"):
            validate_snapshot_json(json.dumps(doc))

    def test_reports_from_json_on_v1_is_empty(self):
        doc = json.loads(snapshot_to_json(populated_registry().snapshot()))
        doc["schema"] = SNAPSHOT_SCHEMA_V1
        assert reports_from_json(json.dumps(doc)) == {}

    def test_reports_from_json_on_v2_without_block_is_empty(self):
        assert reports_from_json(
            snapshot_to_json(populated_registry().snapshot())
        ) == {}

    def test_reports_round_trip(self):
        reports = {
            "critical_path": _minimal_critical_path_block(),
            "slo": _minimal_slo_block(),
        }
        text = snapshot_to_json(populated_registry().snapshot(), reports=reports)
        validate_snapshot_json(text)
        assert reports_from_json(text) == reports
        # The families parse is unaffected by the extra block.
        assert (
            snapshot_from_json(text) == populated_registry().snapshot()
        )

    def test_inf_burn_rates_validate(self):
        block = _minimal_slo_block()
        (mon,) = block["monitors"]
        assert mon["fast_burn_rate"] == "inf"
        text = snapshot_to_json(
            populated_registry().snapshot(), reports={"slo": block}
        )
        validate_snapshot_json(text)

    def test_unknown_report_block_rejected(self):
        text = snapshot_to_json(
            populated_registry().snapshot(), reports={"mystery": {}}
        )
        with pytest.raises(SnapshotSchemaError, match="unknown report"):
            validate_snapshot_json(text)

    def test_conservation_violation_rejected(self):
        block = _minimal_critical_path_block()
        block["train"]["attribution"][0]["seconds"] = 0.25  # sums to 0.75 != 1.5
        text = snapshot_to_json(
            populated_registry().snapshot(), reports={"critical_path": block}
        )
        with pytest.raises(SnapshotSchemaError, match="sum to the makespan"):
            validate_snapshot_json(text)

    def test_step_with_start_after_end_rejected(self):
        block = _minimal_critical_path_block()
        block["train"]["steps"][0]["end"] = -1.0
        text = snapshot_to_json(
            populated_registry().snapshot(), reports={"critical_path": block}
        )
        with pytest.raises(SnapshotSchemaError, match="start must not exceed"):
            validate_snapshot_json(text)

    def test_scenario_metrics_json_validates_end_to_end(self, tmp_path):
        """The exact artifact CI validates: a day-in-the-life metrics.json
        with live critical-path and SLO blocks."""
        from repro.obs import run_day_in_the_life
        from repro.obs.schema import main as schema_main

        result = run_day_in_the_life(
            n_iterations=1, n_requests=20, out_dir=tmp_path
        )
        assert schema_main([str(result.paths["metrics.json"])]) == 0
        reports = reports_from_json(result.paths["metrics.json"].read_text())
        assert set(reports) == {"critical_path", "slo"}
        assert {m["name"] for m in reports["slo"]["monitors"]} == {
            "serve_p99_latency", "publish_staleness", "train_step_time"
        }


class TestRunReport:
    def test_report_renders_all_kinds(self):
        report = run_report(populated_registry(), title="My run")
        assert "My run" in report
        assert "wire_bytes_total{stage=payload}" in report
        assert "queue_depth" in report
        assert "latency_seconds" in report
        # histogram row shows count and quantiles
        assert "p50" in report and "p99" in report

    def test_report_subsumes_breakdown(self):
        from repro.dist.timeline import EventCategory, Timeline

        timeline = Timeline()
        timeline.record(0, EventCategory.EMB_LOOKUP, 0.0, 1.0)
        report = run_report(
            populated_registry(), timelines={"train": timeline}, title="Run"
        )
        assert "train time breakdown" in report
        assert "Embedding lookup" in report

    def test_report_renders_critical_path_section(self):
        from repro.dist.timeline import EventCategory, Timeline
        from repro.obs.critpath import extract_critical_path

        timeline = Timeline()
        timeline.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        timeline.record(0, EventCategory.ALLTOALL_FWD, 1.0, 0.5)
        result = extract_critical_path(timeline)
        report = run_report(
            populated_registry(),
            critical_paths={"train": result},
            title="Run",
        )
        assert "train critical path" in report
        assert "makespan 1.500000s" in report

    def test_report_renders_slo_section_from_hub_or_states(self):
        from repro.obs.slo import BurnRateMonitor, SloHub, SLOSpec

        hub = SloHub(
            [
                BurnRateMonitor(
                    SLOSpec(
                        name="serve_p99_latency", source="serve_latency",
                        threshold=1.0, objective=1.0,
                        fast_window=0.2, slow_window=1.0,
                        fast_burn=1.0, slow_burn=1.0,
                    )
                )
            ]
        )
        hub.feed("serve_latency", 0.5, 2.0)
        via_hub = run_report(populated_registry(), slo=hub, title="Run")
        assert "SLO burn rates" in via_hub
        assert "serve_p99_latency" in via_hub
        assert "FIRING" in via_hub
        via_states = run_report(
            populated_registry(), slo=hub.states(), title="Run"
        )
        assert "SLO burn rates" in via_states
