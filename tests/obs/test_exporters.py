"""Exporters: JSON and Prometheus round-trips, schema validation, run_report.

The two fidelity laws:

* JSON is lossless: ``snapshot_from_json(snapshot_to_json(s)) == s``.
* Prometheus keeps buckets but not reservoirs:
  ``from_prometheus(to_prometheus(s)) == s.scrub_exact()``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.exporters import (
    SNAPSHOT_SCHEMA_ID,
    from_prometheus,
    run_report,
    snapshot_from_json,
    snapshot_to_json,
    to_prometheus,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.schema import SnapshotSchemaError, validate_snapshot_json


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("wire_bytes_total", "bytes on the wire").inc(4096, stage="payload")
    reg.counter("wire_bytes_total").inc(128, stage="metadata")
    reg.gauge("queue_depth", "outstanding requests").set(3.0, replica="0")
    h = reg.histogram("latency_seconds", "request latency", bounds=(0.001, 0.01, 0.1))
    for v in (0.0004, 0.002, 0.05, 0.2):
        h.observe(v)
    reg.histogram("ratio", bounds=(2.0, 8.0)).observe(5.0, table="3")
    return reg


integral_values = st.integers(min_value=0, max_value=10**9).map(float)


def _build_registry(counter_incs, hist_obs):
    reg = MetricsRegistry()
    for label, v in counter_incs:
        reg.counter("ops_total").inc(v, kind=label)
    h = reg.histogram("dist", bounds=(1.0, 10.0, 100.0), exact_limit=8)
    for v in hist_obs:
        h.observe(v)
    return reg


registry_state = st.builds(
    _build_registry,
    st.lists(st.tuples(st.sampled_from("abc"), integral_values), max_size=4),
    st.lists(integral_values, max_size=12),
)


class TestJsonRoundTrip:
    def test_lossless(self):
        snap = populated_registry().snapshot()
        assert snapshot_from_json(snapshot_to_json(snap)) == snap

    def test_json_carries_schema_id(self):
        doc = json.loads(snapshot_to_json(populated_registry().snapshot()))
        assert doc["schema"] == SNAPSHOT_SCHEMA_ID

    def test_accepts_live_registry(self):
        reg = populated_registry()
        assert snapshot_from_json(snapshot_to_json(reg)) == reg.snapshot()

    @given(registry_state)
    @settings(max_examples=40, deadline=None)
    def test_lossless_property(self, reg):
        snap = reg.snapshot()
        assert snapshot_from_json(snapshot_to_json(snap)) == snap


class TestPrometheusRoundTrip:
    def test_scrub_law(self):
        snap = populated_registry().snapshot()
        assert from_prometheus(to_prometheus(snap)) == snap.scrub_exact()

    def test_exposition_shape(self):
        text = to_prometheus(populated_registry().snapshot())
        assert '# TYPE wire_bytes_total counter' in text
        assert 'wire_bytes_total{stage="payload"} 4096' in text
        assert '# TYPE latency_seconds histogram' in text
        assert 'latency_seconds_bucket{le="+Inf"} 4' in text
        assert "latency_seconds_count 4" in text

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("odd_total").inc(1, path='a\\b "c"\nd')
        snap = reg.snapshot()
        assert from_prometheus(to_prometheus(snap)) == snap.scrub_exact()

    @given(registry_state)
    @settings(max_examples=40, deadline=None)
    def test_scrub_law_property(self, reg):
        snap = reg.snapshot()
        assert from_prometheus(to_prometheus(snap)) == snap.scrub_exact()

    def test_both_exporters_agree_on_the_same_snapshot(self):
        """The acceptance criterion: one snapshot through both formats
        lands on the same bucket-level state."""
        snap = populated_registry().snapshot()
        via_json = snapshot_from_json(snapshot_to_json(snap))
        via_prom = from_prometheus(to_prometheus(snap))
        assert via_json.scrub_exact() == via_prom


class TestSchemaValidation:
    def test_valid_snapshot_passes(self):
        text = snapshot_to_json(populated_registry().snapshot())
        doc = validate_snapshot_json(text)
        assert doc["schema"] == SNAPSHOT_SCHEMA_ID

    def test_wrong_schema_id_rejected(self):
        doc = json.loads(snapshot_to_json(populated_registry().snapshot()))
        doc["schema"] = "something/else"
        with pytest.raises(SnapshotSchemaError):
            validate_snapshot_json(json.dumps(doc))

    def test_histogram_count_mismatch_rejected(self):
        doc = json.loads(snapshot_to_json(populated_registry().snapshot()))
        for family in doc["families"]:
            if family["kind"] == "histogram":
                family["series"][0]["histogram"]["count"] += 1
                break
        with pytest.raises(SnapshotSchemaError):
            validate_snapshot_json(json.dumps(doc))

    def test_duplicate_family_rejected(self):
        doc = json.loads(snapshot_to_json(populated_registry().snapshot()))
        doc["families"].append(doc["families"][0])
        with pytest.raises(SnapshotSchemaError):
            validate_snapshot_json(json.dumps(doc))

    def test_cli_main(self, tmp_path, capsys):
        from repro.obs.schema import main

        path = tmp_path / "metrics.json"
        path.write_text(snapshot_to_json(populated_registry().snapshot()))
        assert main([str(path)]) == 0
        assert "OK" in capsys.readouterr().out
        path.write_text("{}")
        assert main([str(path)]) != 0
        assert "INVALID" in capsys.readouterr().err


class TestRunReport:
    def test_report_renders_all_kinds(self):
        report = run_report(populated_registry(), title="My run")
        assert "My run" in report
        assert "wire_bytes_total{stage=payload}" in report
        assert "queue_depth" in report
        assert "latency_seconds" in report
        # histogram row shows count and quantiles
        assert "p50" in report and "p99" in report

    def test_report_subsumes_breakdown(self):
        from repro.dist.timeline import EventCategory, Timeline

        timeline = Timeline()
        timeline.record(0, EventCategory.EMB_LOOKUP, 0.0, 1.0)
        report = run_report(
            populated_registry(), timelines={"train": timeline}, title="Run"
        )
        assert "train time breakdown" in report
        assert "Embedding lookup" in report
