"""Span/Tracer annotations and the zero-overhead runtime switch.

Spans live on the ``OBS_STREAM`` annotation lane: they render in the
chrome trace but never enter the profiling layer's time accounting —
the invariant that lets instrumentation annotate work the simulator
already charged without double counting.
"""

from __future__ import annotations

import json

import pytest

from repro.dist.timeline import OBS_STREAM, EventCategory, Timeline
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import OBS, capture, disable, enable, enabled, get_registry
from repro.obs.span import Tracer
from repro.profiling.breakdown import overlap_report


class TestTracer:
    def test_span_records_on_obs_stream(self):
        timeline = Timeline()
        tracer = Tracer(timeline)
        event = tracer.span(EventCategory.TRAIN_STEP, 0.0, 2.0, args={"iteration": 0})
        assert event.stream == OBS_STREAM
        assert event.category == EventCategory.TRAIN_STEP
        assert timeline.events == [event]

    def test_begin_end_span(self):
        timeline = Timeline()
        tracer = Tracer(timeline, rank=1)
        span = tracer.begin(EventCategory.SERVE_REQUEST, 1.0, request=7)
        event = span.end(3.5, hits=2)
        assert event.rank == 1
        assert event.start == 1.0
        assert event.duration == 2.5
        assert event.args == {"request": 7, "hits": 2}

    def test_span_cannot_end_twice_or_backwards(self):
        tracer = Tracer(Timeline())
        span = tracer.begin(EventCategory.TRAIN_STEP, 5.0)
        with pytest.raises(ValueError):
            span.end(4.0)
        span.end(6.0)
        with pytest.raises(RuntimeError):
            span.end(7.0)

    def test_counter_proxies_to_timeline(self):
        timeline = Timeline()
        tracer = Tracer(timeline)
        tracer.counter("depth", 1.0, 3.0)
        tracer.counter("depth", 0.5, 1.0)
        track = timeline.counter_track("depth")
        assert [(s.time, s.value) for s in track] == [(0.5, 1.0), (1.0, 3.0)]


class TestNoDoubleCounting:
    def test_obs_spans_excluded_from_category_totals(self):
        timeline = Timeline()
        timeline.record(0, EventCategory.EMB_LOOKUP, 0.0, 1.0)
        Tracer(timeline).span(EventCategory.TRAIN_STEP, 0.0, 10.0)
        totals = timeline.total_by_category(rank=0)
        assert EventCategory.TRAIN_STEP not in totals
        assert totals[EventCategory.EMB_LOOKUP] == 1.0

    def test_obs_spans_excluded_from_overlap_report(self):
        timeline = Timeline()
        timeline.record(0, EventCategory.EMB_LOOKUP, 0.0, 1.0)
        baseline = overlap_report(timeline)
        Tracer(timeline).span(EventCategory.TRAIN_STEP, 0.0, 50.0)
        assert overlap_report(timeline) == baseline

    def test_obs_spans_render_in_chrome_trace(self):
        timeline = Timeline()
        Tracer(timeline).span(EventCategory.TRAIN_STEP, 0.0, 1.0)
        trace = timeline.to_chrome_trace()
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert any(e["name"] == EventCategory.TRAIN_STEP for e in spans)


class TestRuntimeSwitch:
    def test_disabled_by_default_in_tests(self):
        assert not OBS.enabled
        assert not enabled()

    def test_enable_disable(self):
        reg = enable()
        try:
            assert enabled()
            assert get_registry() is reg
            assert isinstance(reg, MetricsRegistry)
        finally:
            disable()
        assert not enabled()

    def test_enable_accepts_existing_registry(self):
        mine = MetricsRegistry()
        try:
            assert enable(mine) is mine
            assert OBS.registry is mine
        finally:
            disable()

    def test_capture_restores_prior_state(self):
        outer = enable()
        try:
            with capture() as inner:
                assert inner is not outer
                assert OBS.registry is inner
            assert OBS.registry is outer
            assert enabled()
        finally:
            disable()

    def test_capture_restores_disabled_state(self):
        assert not enabled()
        with capture():
            assert enabled()
        assert not enabled()


class TestTimelineCounterTracks:
    def test_record_counter_validates(self):
        timeline = Timeline()
        with pytest.raises(ValueError):
            timeline.record_counter("", 0.0, 1.0)
        with pytest.raises(ValueError):
            timeline.record_counter("depth", -1.0, 1.0)

    def test_counter_names(self):
        timeline = Timeline()
        timeline.record_counter("b", 0.0, 1.0)
        timeline.record_counter("a", 0.0, 2.0)
        assert timeline.counter_names() == ["a", "b"]

    def test_chrome_trace_emits_counter_events(self):
        timeline = Timeline()
        timeline.record_counter("depth", 1.5, 4.0)
        trace = timeline.to_chrome_trace()
        counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
        assert len(counters) == 1
        [event] = counters
        assert event["name"] == "depth"
        assert event["ts"] == pytest.approx(1.5e6)
        assert event["args"] == {"value": 4.0}

    def test_dump_creates_parent_directories(self, tmp_path):
        timeline = Timeline()
        timeline.record(0, EventCategory.EMB_LOOKUP, 0.0, 1.0)
        path = tmp_path / "deep" / "nested" / "trace.json"
        timeline.dump_chrome_trace(path)
        assert json.loads(path.read_text())["traceEvents"]
