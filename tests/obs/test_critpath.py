"""Critical-path analysis: conservation law, what-ifs, rendering.

The two acceptance properties of ``repro.obs.critpath``:

* **Conservation** — over randomized fabrics, workloads, and chunk
  counts, the critical-path steps tile ``[0, makespan]`` exactly, so
  ``attribution_exact()`` (done in :class:`fractions.Fraction`) sums to
  ``Fraction(makespan)`` identically — no float luck.
* **What-if fidelity** — ``speedup_if(category, factor)`` must land
  within 5% of actually re-running the simulator with that category's
  stage times scaled (the compress/decompress knobs the Fig. 12
  scenarios turn).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import (
    IB_HDR_LIKE,
    NVLINK_LIKE,
    PCIE_LIKE,
    ClusterSimulator,
    EventCategory,
    NetworkModel,
    Timeline,
    Topology,
)
from repro.obs.critpath import (
    IDLE_CATEGORY,
    CriticalPathResult,
    CriticalStep,
    TimelineDag,
    critical_path_report,
    extract_critical_path,
    highlight_trace_events,
    report_json_block,
)

METADATA_BYTES = 16


@st.composite
def fabric_and_ranks(draw):
    """A sampled fabric plus its rank count: flat alpha-beta models and
    heterogeneous two-level topologies (incl. oversubscribed inter links)."""
    kind = draw(st.sampled_from(["flat", "hier"]))
    if kind == "flat":
        n = draw(st.integers(min_value=2, max_value=6))
        bandwidth = draw(st.floats(min_value=1e8, max_value=1e11))
        latency = draw(st.floats(min_value=0.0, max_value=1e-5))
        return NetworkModel(bandwidth=bandwidth, latency=latency), n
    n_nodes, gpus = draw(st.sampled_from([(2, 2), (2, 3), (3, 2), (2, 4)]))
    intra = draw(st.sampled_from([NVLINK_LIKE, PCIE_LIKE]))
    inter = draw(
        st.sampled_from([IB_HDR_LIKE, PCIE_LIKE, IB_HDR_LIKE.oversubscribed(4.0)])
    )
    topology = Topology.hierarchical(n_nodes, gpus, intra, inter)
    return NetworkModel.from_topology(topology), n_nodes * gpus


def _workload(n: int, seed: int):
    rng = np.random.default_rng(seed)
    compress = rng.uniform(0.0, 2e-3, size=n).tolist()
    decompress = rng.uniform(0.0, 2e-3, size=n).tolist()
    sizes = rng.integers(0, 60_000, size=(n, n))
    return compress, decompress, sizes


def _run(network, compress, decompress, sizes, chunks, *, overlap=True):
    n = len(compress)
    sim = ClusterSimulator(n, network=network)
    sendbufs = [
        [b"x" * int(sizes[src][dst]) for dst in range(n)] for src in range(n)
    ]
    sim.comm.compressed_all_to_all(
        sendbufs,
        metadata_bytes_per_entry=METADATA_BYTES,
        overlap=overlap,
        compress_seconds=compress,
        decompress_seconds=decompress,
        chunks_per_rank=chunks,
    )
    return sim


class TestConservationLaw:
    @given(fabric_and_ranks(), st.integers(0, 10_000), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_exact_attribution_sums_to_makespan(self, fabric, seed, chunks):
        network, n = fabric
        compress, decompress, sizes = _workload(n, seed)
        sim = _run(network, compress, decompress, sizes, chunks)
        result = extract_critical_path(sim.timeline)
        assert result.makespan == sim.makespan()
        total = sum(result.attribution_exact().values(), Fraction(0))
        assert total == Fraction(result.makespan)

    @given(fabric_and_ranks(), st.integers(0, 10_000), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_steps_tile_the_interval_contiguously(self, fabric, seed, chunks):
        network, n = fabric
        compress, decompress, sizes = _workload(n, seed)
        sim = _run(network, compress, decompress, sizes, chunks)
        result = extract_critical_path(sim.timeline)
        assert result.steps
        assert result.steps[0].start == 0.0
        assert result.steps[-1].end == result.makespan
        for prev, cur in zip(result.steps, result.steps[1:]):
            assert prev.end == cur.start

    def test_sequential_layout_conserves_too(self):
        compress, decompress, sizes = _workload(4, seed=5)
        sim = _run(
            NetworkModel(bandwidth=1e9, latency=1e-6),
            compress, decompress, sizes, 3, overlap=False,
        )
        result = extract_critical_path(sim.timeline)
        total = sum(result.attribution_exact().values(), Fraction(0))
        assert total == Fraction(sim.makespan())

    def test_empty_timeline(self):
        result = extract_critical_path(Timeline())
        assert result.makespan == 0.0
        assert result.steps == ()
        assert result.attribution() == {}


class TestIdleAttribution:
    def test_unexplained_gap_becomes_idle_step(self):
        tl = Timeline()
        tl.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        tl.record(0, EventCategory.DECOMPRESS, 2.0, 1.0)  # exogenous gap
        result = extract_critical_path(tl)
        categories = [s.category for s in result.steps]
        assert IDLE_CATEGORY in categories
        idle = next(s for s in result.steps if s.category == IDLE_CATEGORY)
        assert idle.event_index is None
        assert (idle.start, idle.end) == (1.0, 2.0)
        total = sum(result.attribution_exact().values(), Fraction(0))
        assert total == Fraction(3.0)

    def test_fully_explained_schedule_has_no_idle(self):
        compress, decompress, sizes = _workload(3, seed=11)
        sim = _run(NetworkModel(bandwidth=1e9, latency=0.0),
                   compress, decompress, sizes, 2)
        result = extract_critical_path(sim.timeline)
        assert result.by_category().get(IDLE_CATEGORY, 0.0) == 0.0


FIG12_CONFIGS = [
    # (ranks, chunks, seed) — the Fig.-12-like sweep configurations
    (4, 4, 12),
    (8, 4, 12),
    (6, 2, 3),
    (8, 8, 99),
]


class TestSpeedupIf:
    @pytest.mark.parametrize("n,chunks,seed", FIG12_CONFIGS)
    @pytest.mark.parametrize("category,factor", [
        (EventCategory.COMPRESS, 2.0),
        (EventCategory.COMPRESS, 4.0),
        (EventCategory.DECOMPRESS, 2.0),
        (EventCategory.COMPRESS, 0.5),  # slowdown
    ])
    def test_prediction_within_5pct_of_resimulation(
        self, n, chunks, seed, category, factor
    ):
        network = NetworkModel(bandwidth=1e9, latency=1e-6)
        compress, decompress, sizes = _workload(n, seed)
        sim = _run(network, compress, decompress, sizes, chunks)
        estimate = TimelineDag.from_timeline(sim.timeline).speedup_if(
            category, factor
        )
        scaled_c = [
            c / factor if category == EventCategory.COMPRESS else c
            for c in compress
        ]
        scaled_d = [
            d / factor if category == EventCategory.DECOMPRESS else d
            for d in decompress
        ]
        actual = _run(network, scaled_c, scaled_d, sizes, chunks).makespan()
        assert estimate.baseline_makespan == sim.makespan()
        assert estimate.predicted_makespan == pytest.approx(actual, rel=0.05)

    @given(
        fabric_and_ranks(),
        st.integers(0, 10_000),
        st.integers(1, 5),
        st.sampled_from([0.5, 2.0, 4.0]),
        st.sampled_from([EventCategory.COMPRESS, EventCategory.DECOMPRESS]),
    )
    @settings(max_examples=25, deadline=None)
    def test_prediction_matches_resimulation_randomized(
        self, fabric, seed, chunks, factor, category
    ):
        network, n = fabric
        compress, decompress, sizes = _workload(n, seed)
        sim = _run(network, compress, decompress, sizes, chunks)
        estimate = TimelineDag.from_timeline(sim.timeline).speedup_if(
            category, factor
        )
        scaled_c = [
            c / factor if category == EventCategory.COMPRESS else c
            for c in compress
        ]
        scaled_d = [
            d / factor if category == EventCategory.DECOMPRESS else d
            for d in decompress
        ]
        actual = _run(network, scaled_c, scaled_d, sizes, chunks).makespan()
        assert estimate.predicted_makespan == pytest.approx(actual, rel=0.05)

    def test_identity_factor_reproduces_makespan(self):
        compress, decompress, sizes = _workload(5, seed=21)
        sim = _run(NetworkModel(bandwidth=5e9, latency=1e-6),
                   compress, decompress, sizes, 3)
        dag = TimelineDag.from_timeline(sim.timeline)
        assert dag.reschedule(lambda e: 1.0) == pytest.approx(
            sim.makespan(), rel=1e-9
        )
        estimate = dag.speedup_if(EventCategory.COMPRESS, 1.0)
        assert estimate.predicted_makespan == pytest.approx(
            sim.makespan(), rel=1e-9
        )
        assert estimate.speedup == pytest.approx(1.0, rel=1e-9)

    def test_speeding_up_compress_never_hurts(self):
        compress, decompress, sizes = _workload(6, seed=8)
        sim = _run(NetworkModel(bandwidth=1e9, latency=1e-6),
                   compress, decompress, sizes, 4)
        dag = TimelineDag.from_timeline(sim.timeline)
        estimate = dag.speedup_if(EventCategory.COMPRESS, 3.0)
        assert estimate.predicted_makespan <= dag.makespan * (1 + 1e-9)
        assert estimate.speedup >= 1.0 - 1e-9

    def test_invalid_factor_rejected(self):
        tl = Timeline()
        tl.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        dag = TimelineDag.from_timeline(tl)
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                dag.speedup_if(EventCategory.COMPRESS, bad)

    def test_invalid_scale_rejected(self):
        tl = Timeline()
        tl.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        dag = TimelineDag.from_timeline(tl)
        with pytest.raises(ValueError):
            dag.reschedule(lambda e: -0.5)


class TestRendering:
    def _result(self) -> CriticalPathResult:
        compress, decompress, sizes = _workload(4, seed=17)
        sim = _run(NetworkModel(bandwidth=1e9, latency=1e-6),
                   compress, decompress, sizes, 3)
        return extract_critical_path(sim.timeline)

    def test_report_table(self):
        result = self._result()
        text = critical_path_report(result, title="My path")
        assert "My path" in text
        assert f"{result.makespan:.6f}" in text
        assert "compress" in text
        assert "share" in text

    def test_highlight_lane_entries(self):
        result = self._result()
        entries = highlight_trace_events(
            result, pid=2, offset_seconds=1.0, process_name="train"
        )
        metas = [e for e in entries if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == {"train", "critical path"}
        xs = [e for e in entries if e["ph"] == "X"]
        assert len(xs) == len(result.steps)
        for entry, step in zip(xs, result.steps):
            assert entry["cat"] == "critpath"
            assert entry["pid"] == 2
            assert entry["ts"] == pytest.approx(step.start * 1e6 + 1e6)
            assert entry["dur"] == pytest.approx(step.seconds * 1e6)
            assert entry["args"]["event_index"] == step.event_index

    def test_json_block_shape(self):
        result = self._result()
        block = report_json_block({"train": result})
        doc = block["train"]
        assert doc["makespan"] == result.makespan
        seconds = [row["seconds"] for row in doc["attribution"]]
        assert seconds == sorted(seconds, reverse=True)
        assert sum(seconds) == pytest.approx(result.makespan, rel=1e-9)
        assert len(doc["steps"]) == len(result.steps)
        assert all(
            {"event_index", "rank", "stream", "category", "start", "end"}
            == set(step)
            for step in doc["steps"]
        )

    def test_step_seconds_property(self):
        step = CriticalStep(
            event_index=3, rank=0, stream="compute",
            category="compress", start=1.0, end=2.5,
        )
        assert step.seconds == pytest.approx(1.5)
