"""Acceptance: ONE chrome trace from one run carries every tier.

The day-in-the-life scenario trains with compressed chunked exchanges,
publishes a delta, and serves a request trace; the unified trace must
show trainer step spans, Communicator stage events, the delta
publication, and serving request spans, with at least two counter
tracks — and the exporters must round-trip the same run's snapshot.
"""

from __future__ import annotations

import json

import pytest

from repro.dist.timeline import EventCategory, Timeline
from repro.obs.exporters import (
    from_prometheus,
    snapshot_from_json,
    snapshot_to_json,
    to_prometheus,
)
from repro.obs.scenario import run_day_in_the_life
from repro.obs.trace import dump_unified_chrome_trace, unified_chrome_trace


@pytest.fixture(scope="module")
def result():
    return run_day_in_the_life(n_iterations=2, n_requests=60)


class TestUnifiedTrace:
    def test_all_tiers_in_one_trace(self, result):
        spans = [e for e in result.trace["traceEvents"] if e.get("ph") == "X"]
        names = {e["name"] for e in spans}
        # trainer steps
        assert EventCategory.TRAIN_STEP in names
        # Communicator stage events (the compressed exchange's ① and ②)
        assert EventCategory.COMPRESS in names
        assert EventCategory.METADATA in names
        # the delta publication and the serving requests
        assert EventCategory.PUBLISH in names
        assert EventCategory.SERVE_REQUEST in names

    def test_tiers_are_separate_process_lanes(self, result):
        by_pid: dict[int, set[str]] = {}
        for e in result.trace["traceEvents"]:
            if e.get("ph") == "X":
                by_pid.setdefault(e["pid"], set()).add(e["name"])
        lanes_with = lambda cat: [p for p, names in by_pid.items() if cat in names]
        assert lanes_with(EventCategory.TRAIN_STEP) != lanes_with(EventCategory.SERVE_REQUEST)
        assert len(by_pid) == 3  # train, publish, serve

    def test_at_least_two_counter_tracks(self, result):
        tracks = {
            e["name"] for e in result.trace["traceEvents"] if e.get("ph") == "C"
        }
        assert len(tracks) >= 2
        assert "serve_queue_depth" in tracks
        assert "train_wire_bytes" in tracks

    def test_offsets_shift_later_tiers(self, result):
        spans = [e for e in result.trace["traceEvents"] if e.get("ph") == "X"]
        train_end = max(
            e["ts"] + e["dur"]
            for e in spans
            if e["name"] == EventCategory.TRAIN_STEP
        )
        publish_start = min(
            e["ts"] for e in spans if e["name"] == EventCategory.PUBLISH
        )
        assert publish_start >= train_end - 1  # 1 us rounding slack

    def test_exporters_round_trip_the_same_run(self, result):
        snap = result.snapshot
        assert snapshot_from_json(snapshot_to_json(snap)) == snap
        assert from_prometheus(to_prometheus(snap)) == snap.scrub_exact()

    def test_snapshot_covers_all_tiers(self, result):
        names = set(result.snapshot.names())
        assert {"train_iterations_total", "comm_seconds_total",
                "pipeline_raw_bytes_total", "publish_rounds_total",
                "serve_requests_total"} <= names

    def test_report_mentions_each_tier_breakdown(self, result):
        for tier in ("train", "publish", "serve"):
            assert f"{tier} time breakdown" in result.report


class TestUnifiedTraceHelpers:
    def test_unknown_offset_tier_rejected(self):
        with pytest.raises(ValueError):
            unified_chrome_trace({"a": Timeline()}, offsets={"b": 1.0})

    def test_dump_creates_parents(self, tmp_path):
        timeline = Timeline()
        timeline.record(0, EventCategory.EMB_LOOKUP, 0.0, 1.0)
        path = tmp_path / "x" / "y" / "unified.json"
        dump_unified_chrome_trace({"train": timeline}, path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
