"""Tests for the alpha-beta network cost model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import (
    IB_HDR_LIKE,
    NVLINK_LIKE,
    PAPER_FABRIC,
    LinkSpec,
    NetworkModel,
    Topology,
)


def uniform_matrix(n: int, nbytes: float) -> np.ndarray:
    return np.full((n, n), nbytes, dtype=np.float64)


class TestPointToPoint:
    def test_alpha_beta_decomposition(self):
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        assert net.point_to_point_time(0) == pytest.approx(1e-6)
        assert net.point_to_point_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().point_to_point_time(-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0.0)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=1e9, latency=-1.0)


class TestAllToAll:
    def test_bigger_payload_costs_more(self):
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        small = net.all_to_all_time(uniform_matrix(8, 1_000))
        large = net.all_to_all_time(uniform_matrix(8, 1_000_000))
        assert large > small

    def test_lower_bandwidth_costs_more(self):
        matrix = uniform_matrix(8, 1_000_000)
        fast = NetworkModel(bandwidth=10e9, latency=1e-6)
        slow = NetworkModel(bandwidth=1e9, latency=1e-6)
        assert slow.all_to_all_time(matrix) > fast.all_to_all_time(matrix)

    def test_diagonal_is_free(self):
        net = NetworkModel(bandwidth=1e9, latency=0.0)
        only_self = np.diag([1e9, 1e9, 1e9]).astype(float)
        assert net.all_to_all_time(only_self) == 0.0

    def test_bottlenecked_by_busiest_port(self):
        """One hot sender sets the pace even if everyone else is idle."""
        net = NetworkModel(bandwidth=1e9, latency=0.0)
        matrix = np.zeros((4, 4))
        matrix[2, :] = 1e9  # rank 2 sends 1 GB to everyone
        # 3 GB egress on rank 2 (self excluded) at 1 GB/s.
        assert net.all_to_all_time(matrix) == pytest.approx(3.0)

    def test_ingress_can_be_the_bottleneck(self):
        net = NetworkModel(bandwidth=1e9, latency=0.0)
        matrix = np.zeros((4, 4))
        matrix[:, 1] = 1e9  # everyone sends rank 1 a gigabyte
        assert net.all_to_all_time(matrix) == pytest.approx(3.0)

    def test_single_rank_is_free(self):
        assert NetworkModel().all_to_all_time(np.array([[123.0]])) == 0.0

    def test_latency_scales_with_cluster_size(self):
        net = NetworkModel(bandwidth=1e12, latency=1e-3)
        t4 = net.all_to_all_time(uniform_matrix(4, 1.0))
        t8 = net.all_to_all_time(uniform_matrix(8, 1.0))
        assert t8 > t4

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            NetworkModel().all_to_all_time(np.zeros((2, 3)))

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().all_to_all_time(np.full((2, 2), -1.0))

    def test_uniform_helper_matches_matrix_form(self):
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        n, per_pair = 8, 4096.0
        expected = net.all_to_all_time(uniform_matrix(n, per_pair))
        assert net.uniform_all_to_all_time(per_pair, n) == pytest.approx(expected)

    @given(
        st.integers(min_value=2, max_value=16),
        st.floats(min_value=1.0, max_value=1e9),
        st.floats(min_value=1e6, max_value=1e12),
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_bytes_and_bandwidth(self, n, nbytes, bandwidth):
        net = NetworkModel(bandwidth=bandwidth, latency=1e-6)
        t = net.all_to_all_time(uniform_matrix(n, nbytes))
        assert t >= net.all_to_all_time(uniform_matrix(n, nbytes / 2))
        slower = NetworkModel(bandwidth=bandwidth / 2, latency=1e-6)
        assert slower.all_to_all_time(uniform_matrix(n, nbytes)) >= t


class TestAllReduce:
    def test_bigger_payload_costs_more(self):
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        assert net.all_reduce_time(1e8, 8) > net.all_reduce_time(1e6, 8)

    def test_lower_bandwidth_costs_more(self):
        slow = NetworkModel(bandwidth=1e9, latency=1e-6)
        fast = NetworkModel(bandwidth=4e9, latency=1e-6)
        assert slow.all_reduce_time(1e8, 8) > fast.all_reduce_time(1e8, 8)

    def test_ring_formula(self):
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        n, nbytes = 4, 1e9
        expected = 2 * 3 * 1e-6 + 2 * 3 / 4 * 1.0
        assert net.all_reduce_time(nbytes, n) == pytest.approx(expected)

    def test_single_rank_is_free(self):
        assert NetworkModel().all_reduce_time(1e9, 1) == 0.0

    def test_bandwidth_term_approaches_2x_volume(self):
        """Ring all-reduce moves ~2x the buffer regardless of scale."""
        net = NetworkModel(bandwidth=1e9, latency=0.0)
        assert net.all_reduce_time(1e9, 64) == pytest.approx(2 * 63 / 64, rel=1e-12)


class TestPaperFabric:
    def test_paper_effective_bandwidth(self):
        """The default fabric is the paper's 4 GB/s all-to-all setting."""
        assert PAPER_FABRIC.bandwidth == pytest.approx(4 * 1024**3)
        assert NetworkModel() == PAPER_FABRIC


class TestLinkSpec:
    def test_presets_are_ordered(self):
        assert NVLINK_LIKE.bandwidth > IB_HDR_LIKE.bandwidth
        assert NVLINK_LIKE.latency < IB_HDR_LIKE.latency

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=0.0, latency=1e-6)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=1e9, latency=-1.0)


class TestTopology:
    def test_hierarchical_structure(self):
        topo = Topology.hierarchical(2, 4)
        assert topo.n_ranks == 8
        assert topo.n_nodes == 2
        assert topo.node_of(0) == 0 and topo.node_of(7) == 1
        assert topo.is_intra(0, 3) and not topo.is_intra(3, 4)
        assert topo.bandwidth_matrix[0, 1] == pytest.approx(NVLINK_LIKE.bandwidth)
        assert topo.bandwidth_matrix[0, 4] == pytest.approx(IB_HDR_LIKE.bandwidth)

    def test_flat_equals_single_fabric_model(self):
        """A single-link topology prices every collective like the flat
        alpha-beta model (uniform byte matrices)."""
        link = LinkSpec(bandwidth=1e9, latency=1e-6)
        topo = Topology.flat(8, link)
        model = NetworkModel.from_topology(topo)
        flat = NetworkModel(bandwidth=1e9, latency=1e-6)
        matrix = uniform_matrix(8, 12_345.0)
        assert model.all_to_all_time(matrix) == pytest.approx(flat.all_to_all_time(matrix))
        assert model.all_reduce_time(1e8, 8) == pytest.approx(flat.all_reduce_time(1e8, 8))

    def test_heterogeneous_all_to_all_larger_than_intra_flat(self):
        """Acceptance: NVLink+IB topology prices the same byte matrix
        strictly above a flat model built from the intra-node link."""
        topo = Topology.hierarchical(2, 4)
        hetero = NetworkModel.from_topology(topo)
        intra_flat = NetworkModel(
            bandwidth=NVLINK_LIKE.bandwidth, latency=NVLINK_LIKE.latency
        )
        rng = np.random.default_rng(5)
        matrix = rng.integers(1 << 16, 1 << 22, size=(8, 8)).astype(np.float64)
        assert hetero.all_to_all_time(matrix) > intra_flat.all_to_all_time(matrix)

    def test_phased_all_to_all_bottlenecked_by_slowest_phase_pair(self):
        """Each shift phase lasts as long as its slowest pair."""
        link = LinkSpec(bandwidth=1e9, latency=0.0)
        topo = Topology.flat(4, link)
        matrix = np.zeros((4, 4))
        matrix[2, 3] = 1e9  # phase 1 carries the only payload
        # 3 phases at zero latency; only phase 1 moves bytes.
        assert topo.all_to_all_time(matrix) == pytest.approx(1.0)

    def test_all_to_all_shape_and_sign_validation(self):
        topo = Topology.hierarchical(2, 2)
        with pytest.raises(ValueError, match="does not match"):
            topo.all_to_all_time(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            topo.all_to_all_time(np.full((4, 4), -1.0))

    def test_matrix_validation(self):
        with pytest.raises(ValueError, match="square"):
            Topology(np.zeros((2, 3)), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            Topology(np.zeros((2, 2)), np.zeros((2, 2)))  # zero bandwidth
        with pytest.raises(ValueError, match="node_ids"):
            Topology(np.ones((2, 2)), np.zeros((2, 2)), node_ids=np.zeros(3, dtype=int))

    def test_simulator_rejects_mismatched_topology(self):
        from repro.dist import ClusterSimulator

        net = NetworkModel.from_topology(Topology.hierarchical(2, 4))
        with pytest.raises(ValueError, match="topology"):
            ClusterSimulator(4, network=net)
        assert ClusterSimulator(8, network=net).n_ranks == 8


class TestHierarchicalAllReduce:
    def _uniform_topo(self, n_nodes, gpus, bandwidth=1e9, latency=0.0):
        link = LinkSpec(bandwidth=bandwidth, latency=latency)
        return Topology.hierarchical(n_nodes, gpus, intra_link=link, inter_link=link)

    def test_equals_flat_ring_when_intra_equals_inter(self):
        """On a uniform fabric the rail-parallel hierarchical schedule
        moves exactly the flat ring's bytes: the bandwidth terms coincide
        (compare at zero latency, where the formulas are pure bandwidth)."""
        topo = self._uniform_topo(4, 4)
        net = NetworkModel.from_topology(topo)
        nbytes = 1e9
        assert net.hierarchical_all_reduce_time(nbytes, 16) == pytest.approx(
            net.all_reduce_time(nbytes, 16), rel=1e-12
        )

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=1e3, max_value=1e12),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_below_flat_ring_on_uniform_fabrics(self, n_nodes, gpus, nbytes):
        """Property: the flat ring is bandwidth-optimal on a uniform
        fabric, so hierarchical can never beat it there (they tie)."""
        topo = self._uniform_topo(n_nodes, gpus)
        hier = topo.hierarchical_all_reduce_time(nbytes)
        flat = topo.ring_all_reduce_time(nbytes)
        assert hier >= flat - 1e-9 * max(1.0, flat)
        assert hier == pytest.approx(flat, rel=1e-9, abs=1e-15)

    def test_beats_flat_ring_on_heterogeneous_fabric(self):
        """The point of the hierarchy: only 1/g of the volume crosses the
        slow inter-node link, so it wins when NVLink >> IB."""
        topo = Topology.hierarchical(4, 4)
        nbytes = 1e9
        assert topo.hierarchical_all_reduce_time(nbytes) < topo.ring_all_reduce_time(nbytes)

    def test_single_node_degenerates_to_intra_ring(self):
        link = LinkSpec(bandwidth=1e9, latency=1e-6)
        topo = Topology.hierarchical(1, 8, intra_link=link, inter_link=IB_HDR_LIKE)
        flat = NetworkModel(bandwidth=1e9, latency=1e-6)
        assert topo.hierarchical_all_reduce_time(1e8) == pytest.approx(
            flat.all_reduce_time(1e8, 8)
        )

    def test_one_gpu_per_node_degenerates_to_inter_ring(self):
        link = LinkSpec(bandwidth=1e9, latency=1e-6)
        topo = Topology.hierarchical(8, 1, intra_link=NVLINK_LIKE, inter_link=link)
        flat = NetworkModel(bandwidth=1e9, latency=1e-6)
        assert topo.hierarchical_all_reduce_time(1e8) == pytest.approx(
            flat.all_reduce_time(1e8, 8)
        )

    def test_flat_fallback_without_topology(self):
        """Without a topology the cluster is one node: hierarchical ==
        flat ring exactly, latency included."""
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        assert net.hierarchical_all_reduce_time(1e8, 8) == pytest.approx(
            net.all_reduce_time(1e8, 8)
        )

    def test_unbalanced_nodes_rejected(self):
        node_ids = np.array([0, 0, 0, 1])
        topo = Topology(np.full((4, 4), 1e9), np.zeros((4, 4)), node_ids)
        with pytest.raises(ValueError, match="balanced"):
            topo.hierarchical_all_reduce_time(1e6)

    def test_single_rank_free(self):
        topo = Topology.flat(1, LinkSpec(1e9, 0.0))
        assert topo.hierarchical_all_reduce_time(1e9) == 0.0
        assert topo.all_to_all_time(np.array([[5.0]])) == 0.0
