"""Tests for the alpha-beta network cost model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import NetworkModel, PAPER_FABRIC


def uniform_matrix(n: int, nbytes: float) -> np.ndarray:
    return np.full((n, n), nbytes, dtype=np.float64)


class TestPointToPoint:
    def test_alpha_beta_decomposition(self):
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        assert net.point_to_point_time(0) == pytest.approx(1e-6)
        assert net.point_to_point_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().point_to_point_time(-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0.0)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=1e9, latency=-1.0)


class TestAllToAll:
    def test_bigger_payload_costs_more(self):
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        small = net.all_to_all_time(uniform_matrix(8, 1_000))
        large = net.all_to_all_time(uniform_matrix(8, 1_000_000))
        assert large > small

    def test_lower_bandwidth_costs_more(self):
        matrix = uniform_matrix(8, 1_000_000)
        fast = NetworkModel(bandwidth=10e9, latency=1e-6)
        slow = NetworkModel(bandwidth=1e9, latency=1e-6)
        assert slow.all_to_all_time(matrix) > fast.all_to_all_time(matrix)

    def test_diagonal_is_free(self):
        net = NetworkModel(bandwidth=1e9, latency=0.0)
        only_self = np.diag([1e9, 1e9, 1e9]).astype(float)
        assert net.all_to_all_time(only_self) == 0.0

    def test_bottlenecked_by_busiest_port(self):
        """One hot sender sets the pace even if everyone else is idle."""
        net = NetworkModel(bandwidth=1e9, latency=0.0)
        matrix = np.zeros((4, 4))
        matrix[2, :] = 1e9  # rank 2 sends 1 GB to everyone
        # 3 GB egress on rank 2 (self excluded) at 1 GB/s.
        assert net.all_to_all_time(matrix) == pytest.approx(3.0)

    def test_ingress_can_be_the_bottleneck(self):
        net = NetworkModel(bandwidth=1e9, latency=0.0)
        matrix = np.zeros((4, 4))
        matrix[:, 1] = 1e9  # everyone sends rank 1 a gigabyte
        assert net.all_to_all_time(matrix) == pytest.approx(3.0)

    def test_single_rank_is_free(self):
        assert NetworkModel().all_to_all_time(np.array([[123.0]])) == 0.0

    def test_latency_scales_with_cluster_size(self):
        net = NetworkModel(bandwidth=1e12, latency=1e-3)
        t4 = net.all_to_all_time(uniform_matrix(4, 1.0))
        t8 = net.all_to_all_time(uniform_matrix(8, 1.0))
        assert t8 > t4

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            NetworkModel().all_to_all_time(np.zeros((2, 3)))

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().all_to_all_time(np.full((2, 2), -1.0))

    def test_uniform_helper_matches_matrix_form(self):
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        n, per_pair = 8, 4096.0
        expected = net.all_to_all_time(uniform_matrix(n, per_pair))
        assert net.uniform_all_to_all_time(per_pair, n) == pytest.approx(expected)

    @given(
        st.integers(min_value=2, max_value=16),
        st.floats(min_value=1.0, max_value=1e9),
        st.floats(min_value=1e6, max_value=1e12),
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_bytes_and_bandwidth(self, n, nbytes, bandwidth):
        net = NetworkModel(bandwidth=bandwidth, latency=1e-6)
        t = net.all_to_all_time(uniform_matrix(n, nbytes))
        assert t >= net.all_to_all_time(uniform_matrix(n, nbytes / 2))
        slower = NetworkModel(bandwidth=bandwidth / 2, latency=1e-6)
        assert slower.all_to_all_time(uniform_matrix(n, nbytes)) >= t


class TestAllReduce:
    def test_bigger_payload_costs_more(self):
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        assert net.all_reduce_time(1e8, 8) > net.all_reduce_time(1e6, 8)

    def test_lower_bandwidth_costs_more(self):
        slow = NetworkModel(bandwidth=1e9, latency=1e-6)
        fast = NetworkModel(bandwidth=4e9, latency=1e-6)
        assert slow.all_reduce_time(1e8, 8) > fast.all_reduce_time(1e8, 8)

    def test_ring_formula(self):
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        n, nbytes = 4, 1e9
        expected = 2 * 3 * 1e-6 + 2 * 3 / 4 * 1.0
        assert net.all_reduce_time(nbytes, n) == pytest.approx(expected)

    def test_single_rank_is_free(self):
        assert NetworkModel().all_reduce_time(1e9, 1) == 0.0

    def test_bandwidth_term_approaches_2x_volume(self):
        """Ring all-reduce moves ~2x the buffer regardless of scale."""
        net = NetworkModel(bandwidth=1e9, latency=0.0)
        assert net.all_reduce_time(1e9, 64) == pytest.approx(2 * 63 / 64, rel=1e-12)


class TestPaperFabric:
    def test_paper_effective_bandwidth(self):
        """The default fabric is the paper's 4 GB/s all-to-all setting."""
        assert PAPER_FABRIC.bandwidth == pytest.approx(4 * 1024**3)
        assert NetworkModel() == PAPER_FABRIC
