"""Tests for the GPU cost model."""

from __future__ import annotations

import pytest

from repro.dist import A100_LIKE, GpuModel
from repro.utils.units import MB


class TestUtilization:
    def test_monotone_and_bounded(self):
        gpu = A100_LIKE
        sizes = [0, 1024, 64 * 1024, MB, 16 * MB, 256 * MB]
        series = [gpu.utilization(s) for s in sizes]
        assert series == sorted(series)
        assert all(gpu.min_utilization <= u < 1.0 for u in series)

    def test_floor_applies_to_tiny_kernels(self):
        gpu = GpuModel(min_utilization=0.25)
        assert gpu.utilization(0) == 0.25
        assert gpu.utilization(16) == 0.25

    def test_half_utilization_at_saturation_bytes(self):
        gpu = GpuModel(saturation_bytes=4 * MB, min_utilization=0.01)
        assert gpu.utilization(4 * MB) == pytest.approx(0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            A100_LIKE.utilization(-1)


class TestKernelPricing:
    def test_launch_overhead_floor(self):
        gpu = A100_LIKE
        assert gpu.throughput_kernel_time(0, 40e9) == pytest.approx(
            gpu.kernel_launch_overhead
        )

    def test_fused_kernel_beats_split_kernels(self):
        """One kernel over 2n bytes is cheaper than two kernels over n —
        the primitive behind the paper's buffer optimization."""
        gpu = A100_LIKE
        n = 4 * MB
        fused = gpu.throughput_kernel_time(2 * n, 40e9)
        split = 2 * gpu.throughput_kernel_time(n, 40e9)
        assert fused < split

    def test_time_monotone_in_bytes(self):
        gpu = A100_LIKE
        times = [gpu.throughput_kernel_time(s, 40e9) for s in (0, MB, 8 * MB, 64 * MB)]
        assert times == sorted(times)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            A100_LIKE.throughput_kernel_time(-1, 40e9)
        with pytest.raises(ValueError):
            A100_LIKE.throughput_kernel_time(MB, 0.0)

    def test_memcpy_linear_no_launch(self):
        gpu = A100_LIKE
        assert gpu.memcpy_time(0) == 0.0
        assert gpu.memcpy_time(2 * MB) == pytest.approx(2 * gpu.memcpy_time(MB))


class TestTrainingStepPricing:
    def test_mlp_scales_with_batch(self):
        gpu = A100_LIKE
        sizes = (512, 1024, 512)
        assert gpu.mlp_time(4096, sizes) > gpu.mlp_time(64, sizes)

    def test_mlp_launch_bound_for_tiny_layers(self):
        gpu = A100_LIKE
        t = gpu.mlp_time(1, (2, 2))
        assert t == pytest.approx(gpu.kernel_launch_overhead, rel=1e-3)

    def test_mlp_needs_two_widths(self):
        with pytest.raises(ValueError):
            A100_LIKE.mlp_time(32, (16,))

    def test_lookup_scales_with_tables_and_batch(self):
        gpu = A100_LIKE
        assert gpu.lookup_time(4096, 64, 26) > gpu.lookup_time(4096, 64, 1)
        assert gpu.lookup_time(4096, 64, 26) > gpu.lookup_time(256, 64, 26)

    def test_interaction_scales_with_features(self):
        gpu = A100_LIKE
        assert gpu.interaction_time(1024, 27, 64) > gpu.interaction_time(1024, 7, 64)


class TestConfiguration:
    def test_preset_is_frozen(self):
        with pytest.raises(Exception):
            A100_LIKE.flops = 1.0  # type: ignore[misc]

    def test_custom_overrides(self):
        gpu = GpuModel(kernel_launch_overhead=1e-3, saturation_bytes=4.0 * MB)
        assert gpu.kernel_launch_overhead == 1e-3
        assert gpu.saturation_bytes == 4.0 * MB

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GpuModel(flops=0.0)
        with pytest.raises(ValueError):
            GpuModel(min_utilization=0.0)
        with pytest.raises(ValueError):
            GpuModel(min_utilization=1.5)
        with pytest.raises(ValueError):
            GpuModel(kernel_launch_overhead=-1.0)
