"""Tests for the Communicator's exact collectives and the simulator's
clock/timeline bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import (
    ClusterSimulator,
    Communicator,
    EventCategory,
    NetworkModel,
    payload_nbytes,
)


@pytest.fixture
def sim() -> ClusterSimulator:
    return ClusterSimulator(4)


def rank_buffers(n: int, rng: np.random.Generator) -> list[list[np.ndarray]]:
    return [
        [rng.normal(size=(3, 5)).astype(np.float32) for _ in range(n)] for _ in range(n)
    ]


class TestPayloadNbytes:
    def test_sizes(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes(bytearray(7)) == 7
        assert payload_nbytes(np.zeros((2, 3), dtype=np.float32)) == 24

    def test_memoryview_counts_bytes_not_items(self):
        assert payload_nbytes(memoryview(np.zeros(10, dtype=np.float64))) == 80

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            payload_nbytes(12345)


class TestAllToAll:
    def test_bit_identical_roundtrip(self, sim):
        """Receivers get exactly the objects the senders posted: a full
        exchange-and-return leaves every buffer bit-identical."""
        rng = np.random.default_rng(7)
        sent = rank_buffers(4, rng)
        received = sim.comm.all_to_all(sent)
        # received[dst][src] is sent[src][dst], exact.
        for src in range(4):
            for dst in range(4):
                np.testing.assert_array_equal(received[dst][src], sent[src][dst])
        # Send everything straight back: bit-identical roundtrip.
        returned = sim.comm.all_to_all(received)
        for src in range(4):
            for dst in range(4):
                np.testing.assert_array_equal(returned[src][dst], sent[src][dst])

    def test_bytes_payloads(self, sim):
        sent = [[f"{src}->{dst}".encode() for dst in range(4)] for src in range(4)]
        received = sim.comm.all_to_all(sent)
        assert received[2][1] == b"1->2"

    def test_charges_wire_time_to_all_ranks(self, sim):
        rng = np.random.default_rng(7)
        sim.comm.all_to_all(rank_buffers(4, rng))
        events = sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD)
        assert {e.rank for e in events} == {0, 1, 2, 3}
        assert len({(e.start, e.end) for e in events}) == 1  # identical spans
        assert sim.makespan() > 0.0

    def test_charged_time_matches_network_model(self):
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        sim = ClusterSimulator(4, network=net)
        sent = [[b"x" * 1000 for _ in range(4)] for _ in range(4)]
        sim.comm.all_to_all(sent)
        expected = net.all_to_all_time(np.full((4, 4), 1000))
        assert sim.makespan() == pytest.approx(expected)

    def test_wrong_shape_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.comm.all_to_all([[b""] * 4] * 3)
        with pytest.raises(ValueError):
            sim.comm.all_to_all([[b""] * 3] * 4)


class TestCompressedAllToAll:
    def test_metadata_round_precedes_payloads(self, sim):
        sent = [[b"x" * (src + dst + 1) for dst in range(4)] for src in range(4)]
        received = sim.comm.compressed_all_to_all(sent, entries_per_pair=26)
        assert received[3][1] == b"x" * 5
        meta = sim.timeline.events_in_category(EventCategory.METADATA)
        payload = sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD)
        assert len(meta) == 4 and len(payload) == 4
        assert max(e.end for e in meta) <= min(e.start for e in payload)

    def test_backward_exchange_can_be_labelled(self, sim):
        sent = [[b"g" * 8 for _ in range(4)] for _ in range(4)]
        sim.comm.compressed_all_to_all(sent, category=EventCategory.ALLTOALL_BWD)
        assert len(sim.timeline.events_in_category(EventCategory.ALLTOALL_BWD)) == 4
        assert not sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD)

    def test_metadata_cost_is_fixed_size(self):
        """Stage ② pricing ignores payload sizes — only entry count."""
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        results = []
        for scale in (1, 1000):
            sim = ClusterSimulator(4, network=net)
            sent = [[b"x" * scale for _ in range(4)] for _ in range(4)]
            sim.comm.compressed_all_to_all(sent, metadata_bytes_per_entry=16)
            meta = sim.timeline.events_in_category(EventCategory.METADATA)
            results.append(meta[0].duration)
        assert results[0] == pytest.approx(results[1])

    def test_validation(self, sim):
        good = [[b"x"] * 4] * 4
        with pytest.raises(ValueError):
            sim.comm.compressed_all_to_all(good, metadata_bytes_per_entry=0)
        with pytest.raises(ValueError):
            sim.comm.compressed_all_to_all(good, entries_per_pair=0)


class TestAllReduce:
    def test_exact_deterministic_sum(self, sim):
        rng = np.random.default_rng(3)
        arrays = [rng.normal(size=(8, 8)).astype(np.float32) for _ in range(4)]
        expected = arrays[0].copy()
        for a in arrays[1:]:
            expected += a
        results = sim.comm.all_reduce(arrays)
        assert len(results) == 4
        for out in results:
            np.testing.assert_array_equal(out, expected)  # bit-identical
        # Results are copies, not views of one shared buffer.
        results[0][0, 0] += 1.0
        np.testing.assert_array_equal(results[1], expected)

    def test_charges_allreduce_time(self, sim):
        arrays = [np.ones(1024, dtype=np.float32) for _ in range(4)]
        sim.comm.all_reduce(arrays)
        events = sim.timeline.events_in_category(EventCategory.ALLREDUCE)
        assert {e.rank for e in events} == {0, 1, 2, 3}

    def test_shape_mismatch_rejected(self, sim):
        arrays = [np.ones(4), np.ones(4), np.ones(5), np.ones(4)]
        with pytest.raises(ValueError, match="shape"):
            sim.comm.all_reduce(arrays)

    def test_wrong_count_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.comm.all_reduce([np.ones(4)] * 3)

    def test_dtype_mismatch_rejected(self, sim):
        """Mixed dtypes would silently accumulate in arrays[0]'s dtype (or
        crash in numpy), breaking the bit-for-bit guarantee — reject early."""
        arrays = [np.ones(4, dtype=np.float32) for _ in range(3)]
        arrays.append(np.ones(4, dtype=np.float64))
        with pytest.raises(ValueError, match="dtype"):
            sim.comm.all_reduce(arrays)


class TestBroadcast:
    def test_everyone_gets_roots_payload(self, sim):
        out = sim.comm.broadcast(b"plan", root=2)
        assert out == [b"plan"] * 4
        assert sim.makespan() > 0.0

    def test_mutable_payloads_not_aliased_across_ranks(self, sim):
        out = sim.comm.broadcast(np.zeros(4))
        out[1][0] += 1.0
        np.testing.assert_array_equal(out[0], np.zeros(4))
        out2 = sim.comm.broadcast(bytearray(b"abc"))
        out2[1][0] = ord("z")
        assert out2[0] == bytearray(b"abc")

    def test_single_rank_free(self):
        sim = ClusterSimulator(1)
        assert sim.comm.broadcast(b"plan") == [b"plan"]
        assert sim.makespan() == 0.0

    def test_bad_root_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.comm.broadcast(b"x", root=4)


class TestClusterSimulator:
    def test_compute_advances_only_that_rank(self, sim):
        end = sim.compute(1, 0.25, EventCategory.COMPRESS)
        assert end == pytest.approx(0.25)
        assert sim.now(1) == pytest.approx(0.25)
        assert sim.now(0) == 0.0
        assert sim.clocks == (0.0, 0.25, 0.0, 0.0)

    def test_collective_waits_for_straggler(self, sim):
        sim.compute(2, 1.0, EventCategory.COMPRESS)
        end = sim.collective(0.5, EventCategory.ALLTOALL_FWD)
        assert end == pytest.approx(1.5)
        assert sim.clocks == (1.5, 1.5, 1.5, 1.5)
        events = sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD)
        assert all(e.start == pytest.approx(1.0) for e in events)

    def test_barrier_syncs_without_event(self, sim):
        sim.compute(0, 2.0, EventCategory.COMPRESS)
        n_events = len(sim.timeline)
        assert sim.barrier() == pytest.approx(2.0)
        assert sim.clocks == (2.0, 2.0, 2.0, 2.0)
        assert len(sim.timeline) == n_events

    def test_reset(self, sim):
        sim.compute(0, 1.0, EventCategory.COMPRESS)
        sim.reset()
        assert sim.makespan() == 0.0
        assert len(sim.timeline) == 0

    def test_owns_cost_models_and_communicator(self, sim):
        assert sim.gpu is not None
        assert sim.network is not None
        assert isinstance(sim.comm, Communicator)
        assert sim.comm.simulator is sim

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            ClusterSimulator(0)
        with pytest.raises(ValueError):
            sim.compute(4, 1.0, EventCategory.COMPRESS)
        with pytest.raises(ValueError):
            sim.compute(0, -1.0, EventCategory.COMPRESS)
        with pytest.raises(ValueError):
            sim.collective(float("nan"), EventCategory.ALLTOALL_FWD)

    def test_repr(self, sim):
        assert "n_ranks=4" in repr(sim)
