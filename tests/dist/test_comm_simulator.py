"""Tests for the Communicator's exact collectives and the simulator's
clock/timeline bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import (
    COMM_STREAM,
    COMPUTE_STREAM,
    ClusterSimulator,
    Communicator,
    EventCategory,
    NetworkModel,
    payload_nbytes,
)


@pytest.fixture
def sim() -> ClusterSimulator:
    return ClusterSimulator(4)


def rank_buffers(n: int, rng: np.random.Generator) -> list[list[np.ndarray]]:
    return [
        [rng.normal(size=(3, 5)).astype(np.float32) for _ in range(n)] for _ in range(n)
    ]


class TestPayloadNbytes:
    def test_sizes(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes(bytearray(7)) == 7
        assert payload_nbytes(np.zeros((2, 3), dtype=np.float32)) == 24

    def test_memoryview_counts_bytes_not_items(self):
        assert payload_nbytes(memoryview(np.zeros(10, dtype=np.float64))) == 80

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            payload_nbytes(12345)


class TestAllToAll:
    def test_bit_identical_roundtrip(self, sim):
        """Receivers get exactly the objects the senders posted: a full
        exchange-and-return leaves every buffer bit-identical."""
        rng = np.random.default_rng(7)
        sent = rank_buffers(4, rng)
        received = sim.comm.all_to_all(sent)
        # received[dst][src] is sent[src][dst], exact.
        for src in range(4):
            for dst in range(4):
                np.testing.assert_array_equal(received[dst][src], sent[src][dst])
        # Send everything straight back: bit-identical roundtrip.
        returned = sim.comm.all_to_all(received)
        for src in range(4):
            for dst in range(4):
                np.testing.assert_array_equal(returned[src][dst], sent[src][dst])

    def test_bytes_payloads(self, sim):
        sent = [[f"{src}->{dst}".encode() for dst in range(4)] for src in range(4)]
        received = sim.comm.all_to_all(sent)
        assert received[2][1] == b"1->2"

    def test_charges_wire_time_to_all_ranks(self, sim):
        rng = np.random.default_rng(7)
        sim.comm.all_to_all(rank_buffers(4, rng))
        events = sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD)
        assert {e.rank for e in events} == {0, 1, 2, 3}
        assert len({(e.start, e.end) for e in events}) == 1  # identical spans
        assert sim.makespan() > 0.0

    def test_charged_time_matches_network_model(self):
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        sim = ClusterSimulator(4, network=net)
        sent = [[b"x" * 1000 for _ in range(4)] for _ in range(4)]
        sim.comm.all_to_all(sent)
        expected = net.all_to_all_time(np.full((4, 4), 1000))
        assert sim.makespan() == pytest.approx(expected)

    def test_wrong_shape_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.comm.all_to_all([[b""] * 4] * 3)
        with pytest.raises(ValueError):
            sim.comm.all_to_all([[b""] * 3] * 4)


class TestCompressedAllToAll:
    def test_metadata_round_precedes_payloads(self, sim):
        sent = [[b"x" * (src + dst + 1) for dst in range(4)] for src in range(4)]
        received = sim.comm.compressed_all_to_all(sent, entries_per_pair=26)
        assert received[3][1] == b"x" * 5
        meta = sim.timeline.events_in_category(EventCategory.METADATA)
        payload = sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD)
        assert len(meta) == 4 and len(payload) == 4
        assert max(e.end for e in meta) <= min(e.start for e in payload)

    def test_backward_exchange_can_be_labelled(self, sim):
        sent = [[b"g" * 8 for _ in range(4)] for _ in range(4)]
        sim.comm.compressed_all_to_all(sent, category=EventCategory.ALLTOALL_BWD)
        assert len(sim.timeline.events_in_category(EventCategory.ALLTOALL_BWD)) == 4
        assert not sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD)

    def test_metadata_cost_is_fixed_size(self):
        """Stage ② pricing ignores payload sizes — only entry count."""
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        results = []
        for scale in (1, 1000):
            sim = ClusterSimulator(4, network=net)
            sent = [[b"x" * scale for _ in range(4)] for _ in range(4)]
            sim.comm.compressed_all_to_all(sent, metadata_bytes_per_entry=16)
            meta = sim.timeline.events_in_category(EventCategory.METADATA)
            results.append(meta[0].duration)
        assert results[0] == pytest.approx(results[1])

    def test_validation(self, sim):
        good = [[b"x"] * 4] * 4
        with pytest.raises(ValueError):
            sim.comm.compressed_all_to_all(good, metadata_bytes_per_entry=0)
        with pytest.raises(ValueError):
            sim.comm.compressed_all_to_all(good, entries_per_pair=0)


class TestAllReduce:
    def test_exact_deterministic_sum(self, sim):
        rng = np.random.default_rng(3)
        arrays = [rng.normal(size=(8, 8)).astype(np.float32) for _ in range(4)]
        expected = arrays[0].copy()
        for a in arrays[1:]:
            expected += a
        results = sim.comm.all_reduce(arrays)
        assert len(results) == 4
        for out in results:
            np.testing.assert_array_equal(out, expected)  # bit-identical
        # Results are copies, not views of one shared buffer.
        results[0][0, 0] += 1.0
        np.testing.assert_array_equal(results[1], expected)

    def test_charges_allreduce_time(self, sim):
        arrays = [np.ones(1024, dtype=np.float32) for _ in range(4)]
        sim.comm.all_reduce(arrays)
        events = sim.timeline.events_in_category(EventCategory.ALLREDUCE)
        assert {e.rank for e in events} == {0, 1, 2, 3}

    def test_shape_mismatch_rejected(self, sim):
        arrays = [np.ones(4), np.ones(4), np.ones(5), np.ones(4)]
        with pytest.raises(ValueError, match="shape"):
            sim.comm.all_reduce(arrays)

    def test_wrong_count_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.comm.all_reduce([np.ones(4)] * 3)

    def test_dtype_mismatch_rejected(self, sim):
        """Mixed dtypes would silently accumulate in arrays[0]'s dtype (or
        crash in numpy), breaking the bit-for-bit guarantee — reject early."""
        arrays = [np.ones(4, dtype=np.float32) for _ in range(3)]
        arrays.append(np.ones(4, dtype=np.float64))
        with pytest.raises(ValueError, match="dtype"):
            sim.comm.all_reduce(arrays)


class TestBroadcast:
    def test_everyone_gets_roots_payload(self, sim):
        out = sim.comm.broadcast(b"plan", root=2)
        assert out == [b"plan"] * 4
        assert sim.makespan() > 0.0

    def test_mutable_payloads_not_aliased_across_ranks(self, sim):
        out = sim.comm.broadcast(np.zeros(4))
        out[1][0] += 1.0
        np.testing.assert_array_equal(out[0], np.zeros(4))
        out2 = sim.comm.broadcast(bytearray(b"abc"))
        out2[1][0] = ord("z")
        assert out2[0] == bytearray(b"abc")

    def test_single_rank_free(self):
        sim = ClusterSimulator(1)
        assert sim.comm.broadcast(b"plan") == [b"plan"]
        assert sim.makespan() == 0.0

    def test_bad_root_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.comm.broadcast(b"x", root=4)


class TestClusterSimulator:
    def test_compute_advances_only_that_rank(self, sim):
        end = sim.compute(1, 0.25, EventCategory.COMPRESS)
        assert end == pytest.approx(0.25)
        assert sim.now(1) == pytest.approx(0.25)
        assert sim.now(0) == 0.0
        assert sim.clocks == (0.0, 0.25, 0.0, 0.0)

    def test_collective_waits_for_straggler(self, sim):
        sim.compute(2, 1.0, EventCategory.COMPRESS)
        end = sim.collective(0.5, EventCategory.ALLTOALL_FWD)
        assert end == pytest.approx(1.5)
        assert sim.clocks == (1.5, 1.5, 1.5, 1.5)
        events = sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD)
        assert all(e.start == pytest.approx(1.0) for e in events)

    def test_barrier_syncs_without_event(self, sim):
        sim.compute(0, 2.0, EventCategory.COMPRESS)
        n_events = len(sim.timeline)
        assert sim.barrier() == pytest.approx(2.0)
        assert sim.clocks == (2.0, 2.0, 2.0, 2.0)
        assert len(sim.timeline) == n_events

    def test_reset(self, sim):
        sim.compute(0, 1.0, EventCategory.COMPRESS)
        sim.reset()
        assert sim.makespan() == 0.0
        assert len(sim.timeline) == 0

    def test_owns_cost_models_and_communicator(self, sim):
        assert sim.gpu is not None
        assert sim.network is not None
        assert isinstance(sim.comm, Communicator)
        assert sim.comm.simulator is sim

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            ClusterSimulator(0)
        with pytest.raises(ValueError):
            sim.compute(4, 1.0, EventCategory.COMPRESS)
        with pytest.raises(ValueError):
            sim.compute(0, -1.0, EventCategory.COMPRESS)
        with pytest.raises(ValueError):
            sim.collective(float("nan"), EventCategory.ALLTOALL_FWD)

    def test_repr(self, sim):
        assert "n_ranks=4" in repr(sim)


class TestStreams:
    def test_streams_advance_independently(self, sim):
        sim.stream_compute(0, 1.0, EventCategory.COMPRESS, COMPUTE_STREAM)
        sim.stream_compute(0, 0.25, EventCategory.ALLTOALL_FWD, COMM_STREAM)
        assert sim.stream_now(0, COMPUTE_STREAM) == pytest.approx(1.0)
        assert sim.stream_now(0, COMM_STREAM) == pytest.approx(0.25)
        # Rank clock is the max over its streams.
        assert sim.now(0) == pytest.approx(1.0)
        # The comm event started at 0 — concurrent with the compute event.
        comm_event = sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD)[0]
        assert comm_event.start == 0.0 and comm_event.stream == COMM_STREAM

    def test_sync_joins_streams(self, sim):
        sim.stream_compute(1, 2.0, EventCategory.COMPRESS, COMPUTE_STREAM)
        assert sim.stream_now(1, COMM_STREAM) == 0.0
        assert sim.sync(1) == pytest.approx(2.0)
        assert sim.stream_now(1, COMM_STREAM) == pytest.approx(2.0)
        # Other ranks untouched (sync is per rank, not a barrier).
        assert sim.now(0) == 0.0

    def test_not_before_delays_start(self, sim):
        end = sim.stream_compute(
            0, 1.0, EventCategory.DECOMPRESS, COMPUTE_STREAM, not_before=5.0
        )
        assert end == pytest.approx(6.0)
        event = sim.timeline.events_in_category(EventCategory.DECOMPRESS)[0]
        assert event.start == pytest.approx(5.0)

    def test_collective_lands_on_comm_stream_and_joins_all(self, sim):
        sim.stream_compute(2, 1.0, EventCategory.COMPRESS, COMPUTE_STREAM)
        sim.collective(0.5, EventCategory.ALLTOALL_FWD)
        events = sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD)
        assert all(e.stream == COMM_STREAM for e in events)
        assert all(e.start == pytest.approx(1.0) for e in events)
        assert sim.clocks == tuple([pytest.approx(1.5)] * 4)

    def test_per_stream_events_never_overlap(self, sim):
        for _ in range(3):
            sim.stream_compute(0, 0.5, EventCategory.COMPRESS, COMPUTE_STREAM)
            sim.stream_compute(0, 0.7, EventCategory.ALLTOALL_FWD, COMM_STREAM)
        for stream in (COMPUTE_STREAM, COMM_STREAM):
            events = sorted(
                (e for e in sim.timeline.events if e.stream == stream),
                key=lambda e: e.start,
            )
            for a, b in zip(events, events[1:]):
                assert a.end <= b.start + 1e-12

    def test_reset_clears_streams(self, sim):
        sim.stream_compute(0, 1.0, EventCategory.COMPRESS, COMM_STREAM)
        sim.reset()
        assert sim.makespan() == 0.0
        assert sim.stream_now(0, COMM_STREAM) == 0.0


def _run_compressed_exchange(overlap: bool, compress, decompress, sizes, chunks):
    n = len(compress)
    sim = ClusterSimulator(n, network=NetworkModel(bandwidth=1e9, latency=1e-6))
    sendbufs = [[b"x" * sizes[src][dst] for dst in range(n)] for src in range(n)]
    sim.comm.compressed_all_to_all(
        sendbufs,
        overlap=overlap,
        compress_seconds=compress,
        decompress_seconds=decompress,
        chunks_per_rank=chunks,
    )
    return sim


class TestOverlappedExchange:
    def test_overlap_reduces_makespan(self):
        compress = [1e-3] * 4
        decompress = [5e-4] * 4
        sizes = [[40_000] * 4 for _ in range(4)]
        chunks = [8] * 4
        sequential = _run_compressed_exchange(False, compress, decompress, sizes, chunks)
        overlapped = _run_compressed_exchange(True, compress, decompress, sizes, chunks)
        assert overlapped.makespan() < sequential.makespan()

    def test_overlap_events_double_book_streams(self):
        sim = _run_compressed_exchange(
            True, [1e-3] * 4, [5e-4] * 4, [[40_000] * 4] * 4, [8] * 4
        )
        wire = sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD)
        compress = sim.timeline.events_in_category(EventCategory.COMPRESS)
        assert all(e.stream == COMM_STREAM for e in wire)
        assert all(e.stream == COMPUTE_STREAM for e in compress)
        # The wire starts before compression has finished: true overlap.
        assert min(e.start for e in wire) < max(e.end for e in compress)

    def test_overlap_metadata_spans_identical_wire_chunked_per_rank(self):
        sim = _run_compressed_exchange(
            True, [1e-3, 2e-3, 5e-4, 0.0], [1e-4] * 4, [[10_000] * 4] * 4, [4] * 4
        )
        meta = sim.timeline.events_in_category(EventCategory.METADATA)
        assert len({(e.start, e.end) for e in meta}) == 1
        # The wire is k real chunk events per rank on the comm stream,
        # tagged with chunk args, never overlapping within one rank's lane.
        wire = sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD)
        for rank in range(4):
            rank_chunks = sorted(
                (e for e in wire if e.rank == rank), key=lambda e: e.start
            )
            assert len(rank_chunks) == 4
            assert [e.args["chunk"] for e in rank_chunks] == [0, 1, 2, 3]
            assert all(e.args["chunks"] == 4 for e in rank_chunks)
            for a, b in zip(rank_chunks, rank_chunks[1:]):
                assert a.end <= b.start + 1e-12
        # Every rank's chunk durations sum to the full collective time.
        expected = sim.network.all_to_all_time(np.full((4, 4), 10_000))
        for rank in range(4):
            total = sum(e.duration for e in wire if e.rank == rank)
            assert total == pytest.approx(expected)

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_overlap_never_worse_property(self, n, seed):
        """The satellite property: overlapped makespan <= sequential, for
        arbitrary per-rank compress/decompress times, payload sizes, and
        chunk granularities."""
        rng = np.random.default_rng(seed)
        compress = rng.uniform(0.0, 2e-3, size=n).tolist()
        decompress = rng.uniform(0.0, 2e-3, size=n).tolist()
        sizes = rng.integers(0, 60_000, size=(n, n)).tolist()
        chunks = rng.integers(1, 12, size=n).tolist()
        sequential = _run_compressed_exchange(False, compress, decompress, sizes, chunks)
        overlapped = _run_compressed_exchange(True, compress, decompress, sizes, chunks)
        assert overlapped.makespan() <= sequential.makespan() + 1e-12

    def test_straggler_chunk_granularity_holds_the_wire_open(self):
        """The wire cannot finish before the compression straggler's last
        chunk plus that rank's OWN wire share: chunking the straggler
        coarser must lengthen the exchange, even when another rank is
        finely chunked."""
        compress = [1e-3, 0.0]
        sizes = [[400_000] * 2] * 2
        coarse = _run_compressed_exchange(True, compress, [0.0] * 2, sizes, [2, 8])
        fine = _run_compressed_exchange(True, compress, [0.0] * 2, sizes, [8, 8])
        assert coarse.makespan() > fine.makespan()

    def test_single_chunk_overlap_cannot_hide_compression(self):
        """With one chunk per rank the wire cannot start early; only the
        decode tail can hide, so the gain is bounded."""
        compress = [1e-3] * 4
        sizes = [[40_000] * 4] * 4
        sequential = _run_compressed_exchange(False, compress, [0.0] * 4, sizes, [1] * 4)
        overlapped = _run_compressed_exchange(True, compress, [0.0] * 4, sizes, [1] * 4)
        assert overlapped.makespan() == pytest.approx(sequential.makespan())

    def test_validation(self, sim):
        good = [[b"x"] * 4] * 4
        with pytest.raises(ValueError, match="compress_seconds"):
            sim.comm.compressed_all_to_all(good, compress_seconds=[1.0])
        with pytest.raises(ValueError, match="chunks_per_rank"):
            sim.comm.compressed_all_to_all(good, chunks_per_rank=[0] * 4)
        with pytest.raises(ValueError, match="entries_per_pair"):
            sim.comm.compressed_all_to_all(good, entries_per_pair=np.ones((3, 3)))


class TestEntriesMatrix:
    def test_matrix_metadata_matches_matrix_pricing(self):
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        sim = ClusterSimulator(4, network=net)
        entries = np.arange(16).reshape(4, 4)
        sim.comm.compressed_all_to_all(
            [[b"x"] * 4] * 4, metadata_bytes_per_entry=16, entries_per_pair=entries
        )
        meta = sim.timeline.events_in_category(EventCategory.METADATA)
        assert meta[0].duration == pytest.approx(net.all_to_all_time(16.0 * entries))

    def test_all_zero_matrix_skips_metadata_round(self, sim):
        sim.comm.compressed_all_to_all(
            [[b"x"] * 4] * 4, entries_per_pair=np.zeros((4, 4), dtype=np.int64)
        )
        assert not sim.timeline.events_in_category(EventCategory.METADATA)
        assert sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD)


class TestPricedCollectives:
    def test_all_to_all_bytes_matches_data_path(self):
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        priced = ClusterSimulator(4, network=net)
        moved = ClusterSimulator(4, network=net)
        matrix = np.full((4, 4), 1000)
        priced.comm.all_to_all_bytes(matrix, EventCategory.ALLTOALL_BWD)
        moved.comm.all_to_all([[b"x" * 1000] * 4] * 4, EventCategory.ALLTOALL_BWD)
        assert priced.makespan() == pytest.approx(moved.makespan())

    def test_all_to_all_bytes_shape_rejected(self, sim):
        with pytest.raises(ValueError, match="does not match"):
            sim.comm.all_to_all_bytes(np.zeros((3, 3)))

    def test_all_reduce_bytes_matches_all_reduce(self):
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        priced = ClusterSimulator(4, network=net)
        moved = ClusterSimulator(4, network=net)
        arrays = [np.ones(1024, dtype=np.float32) for _ in range(4)]
        moved.comm.all_reduce(arrays)
        priced.comm.all_reduce_bytes(arrays[0].nbytes)
        assert priced.makespan() == pytest.approx(moved.makespan())

    def test_all_reduce_bytes_hierarchical_uses_topology(self):
        from repro.dist import NetworkModel as NM, Topology

        net = NM.from_topology(Topology.hierarchical(2, 2))
        ring = ClusterSimulator(4, network=net)
        hier = ClusterSimulator(4, network=net)
        ring.comm.all_reduce_bytes(1 << 24, algorithm="ring")
        hier.comm.all_reduce_bytes(1 << 24, algorithm="hierarchical")
        assert hier.makespan() < ring.makespan()

    def test_bad_algorithm_rejected(self, sim):
        with pytest.raises(ValueError, match="algorithm"):
            sim.comm.all_reduce_bytes(1024, algorithm="tree")


class TestMultiPayload:
    def test_lists_are_sized_and_delivered_whole(self, sim):
        sendbufs = [
            [[b"a" * 3, b"b" * 5] for _ in range(4)] for _ in range(4)
        ]
        assert payload_nbytes(sendbufs[0][0]) == 8
        received = sim.comm.all_to_all(sendbufs)
        assert received[1][2] == [b"a" * 3, b"b" * 5]

    def test_wire_time_counts_the_sum_of_parts(self):
        net = NetworkModel(bandwidth=1e9, latency=1e-6)
        batched = ClusterSimulator(4, network=net)
        single = ClusterSimulator(4, network=net)
        batched.comm.all_to_all([[[b"x" * 400, b"y" * 600]] * 4] * 4)
        single.comm.all_to_all([[b"z" * 1000] * 4] * 4)
        assert batched.makespan() == pytest.approx(single.makespan())


class TestPayloadMetadataMismatch:
    def test_mismatched_batch_names_rank_and_counts(self, sim):
        """A sender whose posted batch disagrees with its advertised
        metadata count fails with the rank and both counts — not a bare
        KeyError/IndexError downstream."""
        entries = np.full((4, 4), 2)
        sendbufs = [[[b"a", b"b"] for _ in range(4)] for _ in range(4)]
        sendbufs[2][1] = [b"only-one"]
        with pytest.raises(ValueError, match=r"rank 2 posted 1 payload\(s\) for rank 1"):
            sim.comm.compressed_all_to_all(sendbufs, entries_per_pair=entries)

    def test_matching_batches_pass(self, sim):
        entries = np.full((4, 4), 2)
        sendbufs = [[[b"a", b"b"] for _ in range(4)] for _ in range(4)]
        received = sim.comm.compressed_all_to_all(sendbufs, entries_per_pair=entries)
        assert received[0][3] == [b"a", b"b"]

    def test_scalar_entries_skip_the_check(self, sim):
        sendbufs = [[b"payload"] * 4 for _ in range(4)]
        sim.comm.compressed_all_to_all(sendbufs, entries_per_pair=3)
