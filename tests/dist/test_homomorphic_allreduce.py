"""Timing and numerics laws of ``Communicator.compressed_all_reduce``.

The homomorphic all-reduce's pitch is structural: payloads aggregate in
compressed space, so the reduction pays codec time once at the leaves and
once at the end, never per hop.  These Hypothesis laws pin that pitch over
randomized fabrics (flat alpha-beta models and heterogeneous topologies,
including oversubscribed inter links and switch-aggregation fabrics):

* in-network aggregation never loses to the decode-sum-recode baseline
  (``in_network=False``), and strictly wins whenever codec time and hops
  are both nonzero;
* the makespan is monotone non-decreasing in the rank count;
* ``algorithm="switch"`` on a fabric *without* aggregation nodes is
  *exactly* the hierarchical schedule — bit-equal makespans (the
  degeneracy law), and the single-rank collective is free;
* numerics ride along: ``count_sum`` totals are bit-identical to
  correctly-rounded sums on every fabric and algorithm, and the obs
  counters account aggregated bytes and saved hops.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import (
    IB_HDR_LIKE,
    NVLINK_LIKE,
    PCIE_LIKE,
    ClusterSimulator,
    NetworkModel,
    Topology,
)

ALGORITHMS = ("ring", "hierarchical", "switch")


@st.composite
def fabric_and_ranks(draw):
    """A sampled fabric plus its rank count, switch-aggregation included."""
    kind = draw(st.sampled_from(["flat", "hier", "switch"]))
    if kind == "flat":
        n = draw(st.integers(min_value=2, max_value=6))
        bandwidth = draw(st.floats(min_value=1e8, max_value=1e11))
        latency = draw(st.floats(min_value=0.0, max_value=1e-5))
        return NetworkModel(bandwidth=bandwidth, latency=latency), n
    n_nodes, gpus = draw(st.sampled_from([(2, 2), (2, 3), (3, 2), (2, 4), (4, 2)]))
    intra = draw(st.sampled_from([NVLINK_LIKE, PCIE_LIKE]))
    inter = draw(
        st.sampled_from([IB_HDR_LIKE, PCIE_LIKE, IB_HDR_LIKE.oversubscribed(4.0)])
    )
    topology = Topology.hierarchical(
        n_nodes, gpus, intra, inter, switch_aggregation=(kind == "switch")
    )
    return NetworkModel.from_topology(topology), n_nodes * gpus


def _arrays(n: int, seed: int, size: int = 257) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [
        np.asarray(rng.normal(0.0, 2.0, size=size), dtype=np.float32)
        for _ in range(n)
    ]


def _makespan(network, arrays, **kwargs) -> float:
    sim = ClusterSimulator(len(arrays), network=network)
    sim.comm.compressed_all_reduce(arrays, **kwargs)
    return sim.makespan()


class TestMakespanLaws:
    @settings(max_examples=40, deadline=None)
    @given(
        fabric_and_ranks(),
        st.sampled_from(ALGORITHMS),
        st.sampled_from(["count_sum", "quant_sum"]),
        st.integers(0, 2**31),
        st.one_of(st.just(0.0), st.floats(min_value=1e-6, max_value=2e-3)),
        st.one_of(st.just(0.0), st.floats(min_value=1e-6, max_value=2e-3)),
    )
    def test_in_network_never_loses_to_decode_sum_recode(
        self, fabric, algorithm, codec, seed, enc, dec
    ):
        network, n = fabric
        arrays = _arrays(n, seed)
        kwargs = dict(
            codec=codec,
            error_bound=1e-3,
            algorithm=algorithm,
            encode_seconds=[enc] * n,
            decode_seconds=[dec] * n,
        )
        aggregated = _makespan(network, arrays, in_network=True, **kwargs)
        baseline = _makespan(network, arrays, in_network=False, **kwargs)
        assert aggregated <= baseline + 1e-15
        if enc + dec > 0.0 and n > 1:
            assert aggregated < baseline

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31), st.sampled_from(["count_sum", "quant_sum"]))
    def test_monotone_in_rank_count(self, seed, codec):
        network = NetworkModel(bandwidth=1e9, latency=1e-6)
        rng = np.random.default_rng(seed)
        base = np.asarray(rng.normal(0.0, 2.0, size=129), dtype=np.float32)
        makespans = []
        for n in (1, 2, 4, 8):
            makespans.append(
                _makespan(
                    network,
                    [base.copy() for _ in range(n)],
                    codec=codec,
                    error_bound=1e-3,
                )
            )
        assert makespans == sorted(makespans)
        assert makespans[0] == 0.0  # single rank: nothing on the wire

    @settings(max_examples=30, deadline=None)
    @given(
        st.sampled_from([(2, 2), (2, 4), (4, 2), (3, 2)]),
        st.sampled_from([IB_HDR_LIKE, PCIE_LIKE, IB_HDR_LIKE.oversubscribed(4.0)]),
        st.integers(0, 2**31),
        st.sampled_from(["count_sum", "quant_sum"]),
    )
    def test_switch_degenerates_exactly_without_aggregation(
        self, layout, inter, seed, codec
    ):
        n_nodes, gpus = layout
        n = n_nodes * gpus
        plain = NetworkModel.from_topology(
            Topology.hierarchical(n_nodes, gpus, NVLINK_LIKE, inter)
        )
        arrays = _arrays(n, seed)
        kwargs = dict(codec=codec, error_bound=1e-3, encode_seconds=[1e-4] * n)
        switch = _makespan(plain, arrays, algorithm="switch", **kwargs)
        hierarchical = _makespan(plain, arrays, algorithm="hierarchical", **kwargs)
        assert switch == hierarchical

    def test_switch_aggregation_beats_hierarchical_when_latency_bound(self):
        """Small payload, many ranks: 4 latency terms beat 2(g-1)+2(N-1)."""
        base = Topology.hierarchical(4, 8, NVLINK_LIKE, IB_HDR_LIKE)
        n = 32
        arrays = _arrays(n, 0, size=16)
        plain = _makespan(
            NetworkModel.from_topology(base),
            arrays,
            codec="count_sum",
            algorithm="hierarchical",
        )
        switched = _makespan(
            NetworkModel.from_topology(base.with_switch_aggregation()),
            arrays,
            codec="count_sum",
            algorithm="switch",
        )
        assert switched < plain


class TestNumericsOnFabrics:
    @settings(max_examples=25, deadline=None)
    @given(fabric_and_ranks(), st.sampled_from(ALGORITHMS), st.integers(0, 2**31))
    def test_count_sum_bit_identical_everywhere(self, fabric, algorithm, seed):
        network, n = fabric
        arrays = _arrays(n, seed, size=37)
        sim = ClusterSimulator(n, network=network)
        results = sim.comm.compressed_all_reduce(
            arrays, codec="count_sum", algorithm=algorithm
        )
        expected = np.array(
            [math.fsum(float(a[i]) for a in arrays) for i in range(37)],
            dtype=np.float64,
        ).astype(np.float32)
        for result in results:
            np.testing.assert_array_equal(result, expected)

    @settings(max_examples=25, deadline=None)
    @given(fabric_and_ranks(), st.integers(0, 2**31))
    def test_quant_sum_within_composed_bound(self, fabric, seed):
        network, n = fabric
        eb = 1e-3
        arrays = _arrays(n, seed, size=37)
        sim = ClusterSimulator(n, network=network)
        results = sim.comm.compressed_all_reduce(
            arrays, codec="quant_sum", error_bound=eb
        )
        exact = np.sum([a.astype(np.float64) for a in arrays], axis=0)
        for result in results:
            assert np.max(np.abs(result.astype(np.float64) - exact)) <= n * eb * (
                1 + 1e-9
            ) + 1e-12

    def test_single_rank_is_identity(self):
        sim = ClusterSimulator(1)
        table = np.asarray([[1.25, -3.5, 0.0]], dtype=np.float32)
        (result,) = sim.comm.compressed_all_reduce([table], codec="count_sum")
        np.testing.assert_array_equal(result, table)
        assert sim.makespan() == 0.0

    def test_validation_errors(self):
        sim = ClusterSimulator(2)
        table = np.ones((2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="expected 2 arrays"):
            sim.comm.compressed_all_reduce([table])
        with pytest.raises(ValueError, match="share a shape"):
            sim.comm.compressed_all_reduce([table, np.ones((3, 2), np.float32)])
        with pytest.raises(ValueError, match="homomorphic"):
            sim.comm.compressed_all_reduce([table, table], codec="hybrid")
        with pytest.raises(ValueError, match="algorithm"):
            sim.comm.compressed_all_reduce([table, table], algorithm="mesh")


class TestObsCounters:
    def test_aggregated_bytes_and_hops_saved(self):
        from repro.obs.runtime import capture

        n = 4
        sim = ClusterSimulator(n)
        arrays = _arrays(n, 3, size=64)
        with capture() as registry:
            sim.comm.compressed_all_reduce(arrays, codec="count_sum")
            sim.comm.compressed_all_reduce(
                arrays, codec="count_sum", in_network=False
            )
            snapshot = registry.snapshot()
        aggregated = snapshot.counter_value(
            "comm_homomorphic_aggregated_bytes_total",
            codec="count_sum",
            algorithm="ring",
        )
        hops_saved = snapshot.counter_value(
            "comm_homomorphic_hops_saved_total",
            codec="count_sum",
            algorithm="ring",
        )
        assert aggregated > 0
        assert hops_saved == n - 1  # second call saved nothing
