"""Property-test harness for the chunk-level pipelined exchange.

The chunked wire model replaces PR 3's analytic first/last-chunk
correction with k real chunk events per rank.  These tests pin its timing
laws over randomized fabrics (flat alpha-beta and heterogeneous
NVLink/PCIe/IB topologies, including oversubscribed inter links):

* the chunked makespan never exceeds the sequential layout,
* it never exceeds the k=1 analytic model (``max(compress) + metadata +
  payload + max(decompress)``),
* it is monotone non-increasing in ``chunks_per_rank``,
* it is bounded below by (and converges to) the pipeline floor, and
* k=1 degenerates exactly to the analytic model.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import (
    COMM_STREAM,
    COMPUTE_STREAM,
    IB_HDR_LIKE,
    NVLINK_LIKE,
    PCIE_LIKE,
    ClusterSimulator,
    EventCategory,
    NetworkModel,
    Topology,
)

METADATA_BYTES = 16


@st.composite
def fabric_and_ranks(draw):
    """A sampled fabric plus its rank count: flat alpha-beta models and
    heterogeneous two-level topologies (incl. oversubscribed inter links)."""
    kind = draw(st.sampled_from(["flat", "hier"]))
    if kind == "flat":
        n = draw(st.integers(min_value=2, max_value=6))
        bandwidth = draw(st.floats(min_value=1e8, max_value=1e11))
        latency = draw(st.floats(min_value=0.0, max_value=1e-5))
        return NetworkModel(bandwidth=bandwidth, latency=latency), n
    n_nodes, gpus = draw(st.sampled_from([(2, 2), (2, 3), (3, 2), (2, 4), (4, 2)]))
    intra = draw(st.sampled_from([NVLINK_LIKE, PCIE_LIKE]))
    inter = draw(
        st.sampled_from([IB_HDR_LIKE, PCIE_LIKE, IB_HDR_LIKE.oversubscribed(4.0)])
    )
    topology = Topology.hierarchical(n_nodes, gpus, intra, inter)
    return NetworkModel.from_topology(topology), n_nodes * gpus


def _workload(n: int, seed: int):
    rng = np.random.default_rng(seed)
    compress = rng.uniform(0.0, 2e-3, size=n).tolist()
    decompress = rng.uniform(0.0, 2e-3, size=n).tolist()
    sizes = rng.integers(0, 60_000, size=(n, n))
    return compress, decompress, sizes


def _run(network, compress, decompress, sizes, chunks, *, overlap=True):
    n = len(compress)
    sim = ClusterSimulator(n, network=network)
    sendbufs = [
        [b"x" * int(sizes[src][dst]) for dst in range(n)] for src in range(n)
    ]
    sim.comm.compressed_all_to_all(
        sendbufs,
        metadata_bytes_per_entry=METADATA_BYTES,
        overlap=overlap,
        compress_seconds=compress,
        decompress_seconds=decompress,
        chunks_per_rank=chunks,
    )
    return sim


def _analytic_k1(network, compress, decompress, sizes) -> float:
    """PR 3's k=1 model: every rank compresses, the metadata and payload
    collectives follow, every rank decompresses."""
    n = len(compress)
    meta = network.uniform_all_to_all_time(METADATA_BYTES, n)
    wire = network.all_to_all_time(np.asarray(sizes, dtype=np.float64))
    return max(compress) + meta + wire + max(decompress)


class TestChunkEvents:
    """Acceptance: k real chunk events per rank, correctly tagged."""

    def test_emits_k_wire_chunk_events_per_rank(self):
        k = 5
        sim = _run(
            NetworkModel(bandwidth=1e9, latency=1e-6),
            [1e-3] * 4,
            [5e-4] * 4,
            np.full((4, 4), 20_000),
            k,
        )
        for rank in range(4):
            wire = [
                e
                for e in sim.timeline.events_for_rank(rank)
                if e.category == EventCategory.ALLTOALL_FWD
            ]
            assert len(wire) == k
            assert all(e.stream == COMM_STREAM for e in wire)
            assert sorted(e.args["chunk"] for e in wire) == list(range(k))
            compress = [
                e
                for e in sim.timeline.events_for_rank(rank)
                if e.category == EventCategory.COMPRESS
            ]
            decode = [
                e
                for e in sim.timeline.events_for_rank(rank)
                if e.category == EventCategory.DECOMPRESS
            ]
            assert len(compress) == k and len(decode) == k
            assert all(e.stream == COMPUTE_STREAM for e in compress + decode)

    def test_per_rank_chunk_counts_respected(self):
        chunks = [1, 2, 3, 4]
        sim = _run(
            NetworkModel(bandwidth=1e9, latency=1e-6),
            [1e-3] * 4,
            [0.0] * 4,
            np.full((4, 4), 20_000),
            chunks,
        )
        for rank, k in enumerate(chunks):
            wire = [
                e
                for e in sim.timeline.events_for_rank(rank)
                if e.category == EventCategory.ALLTOALL_FWD
            ]
            assert len(wire) == k

    def test_wire_chunk_starts_respect_compress_and_slot(self):
        """Chunk i's wire starts only after its compress finished and the
        previous chunk's wire slot freed."""
        sim = _run(
            NetworkModel(bandwidth=1e9, latency=1e-6),
            [4e-3],
            [0.0],
            np.zeros((1, 1)),
            4,
        )
        # Single rank: no wire time, but chunk events must still trail
        # their compress chunks.
        compress = sorted(
            sim.timeline.events_in_category(EventCategory.COMPRESS),
            key=lambda e: e.start,
        )
        wire = sorted(
            sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD),
            key=lambda e: e.start,
        )
        for comp, w in zip(compress, wire):
            assert w.start >= comp.end - 1e-15
        for a, b in zip(wire, wire[1:]):
            assert b.start >= a.end - 1e-15

    def test_wire_chunk_durations_match_actual_byte_shares(self):
        """Sequence payloads: each chunk's wire time is its group's actual
        byte share of the collective, not an even ``payload_seconds / k``
        split (self-destined slices carry zero wire bytes)."""
        network = NetworkModel(bandwidth=1e9, latency=0.0)
        n, k = 2, 3
        sim = ClusterSimulator(n, network=network)
        # Rank 0 posts three off-diagonal slices of very different sizes
        # (plus a self slice that must price as zero wire bytes).
        rank0_to_1 = [b"a" * 60_000, b"b" * 30_000, b"c" * 10_000]
        sendbufs = [
            [[b"s" * 5_000], rank0_to_1],
            [[b"d" * 50_000, b"e" * 25_000, b"f" * 25_000], [b"t" * 5_000]],
        ]
        sim.comm.compressed_all_to_all(
            sendbufs,
            metadata_bytes_per_entry=METADATA_BYTES,
            overlap=True,
            chunks_per_rank=k,
        )
        payload_seconds = network.all_to_all_time(
            np.array([[5_000, 100_000], [100_000, 5_000]])
        )
        for rank, row_sizes in ((0, [0, 60_000, 30_000, 10_000]), (1, [50_000, 25_000, 25_000, 0])):
            wire = sorted(
                (
                    e
                    for e in sim.timeline.events_for_rank(rank)
                    if e.category == EventCategory.ALLTOALL_FWD
                ),
                key=lambda e: e.args["chunk"],
            )
            # 4 atomic parts into 3 chunks: groups of 2, 1, 1 parts.
            groups = [row_sizes[0] + row_sizes[1], row_sizes[2], row_sizes[3]]
            total = sum(groups)
            assert [e.duration for e in wire] == pytest.approx(
                [payload_seconds * g / total for g in groups]
            )
            assert sum(e.duration for e in wire) == pytest.approx(payload_seconds)

    def test_single_buffer_rows_price_equal_chunks(self):
        """An indivisible buffer splits into equal-byte chunks — the k
        slices of one buffer genuinely are even shares."""
        sim = _run(
            NetworkModel(bandwidth=1e9, latency=1e-6),
            [0.0, 0.0],
            [0.0, 0.0],
            np.full((2, 2), 30_000),
            3,
        )
        durations = {
            e.duration
            for e in sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD)
        }
        assert len(durations) == 1  # every chunk identical

    def test_scalar_chunks_per_rank_accepted(self):
        sim = _run(
            NetworkModel(bandwidth=1e9, latency=1e-6),
            [1e-3, 1e-3],
            [0.0, 0.0],
            np.full((2, 2), 1000),
            3,
        )
        wire = sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD)
        assert len(wire) == 6  # 3 chunks x 2 ranks


class TestTimingLaws:
    """The satellite property tests: sequential/analytic bounds, chunk-count
    monotonicity, and the k=1 degeneracy — over sampled fabrics."""

    @given(fabric_and_ranks(), st.integers(1, 12), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_bounded_by_sequential_and_analytic_k1(self, fabric, k, seed):
        network, n = fabric
        compress, decompress, sizes = _workload(n, seed)
        chunked = _run(network, compress, decompress, sizes, k)
        sequential = _run(network, compress, decompress, sizes, k, overlap=False)
        analytic = _analytic_k1(network, compress, decompress, sizes)
        assert chunked.makespan() <= sequential.makespan() + 1e-12
        assert chunked.makespan() <= analytic + 1e-12

    @given(fabric_and_ranks(), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_monotone_non_increasing_in_chunk_count(self, fabric, seed):
        network, n = fabric
        compress, decompress, sizes = _workload(n, seed)
        makespans = [
            _run(network, compress, decompress, sizes, k).makespan()
            for k in (1, 2, 3, 4, 6, 8, 12, 16)
        ]
        for coarse, fine in zip(makespans, makespans[1:]):
            assert fine <= coarse + 1e-12

    @given(fabric_and_ranks(), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_k1_degenerates_to_analytic_model(self, fabric, seed):
        network, n = fabric
        compress, decompress, sizes = _workload(n, seed)
        run = _run(network, compress, decompress, sizes, 1)
        assert run.makespan() == pytest.approx(
            _analytic_k1(network, compress, decompress, sizes), rel=1e-12, abs=1e-15
        )

    @given(fabric_and_ranks(), st.integers(1, 16), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_floor(self, fabric, k, seed):
        """No chunking beats the pipeline floor: the busiest compute
        stream (compress + decode serialize per rank) and the wire behind
        the metadata round."""
        network, n = fabric
        compress, decompress, sizes = _workload(n, seed)
        meta = network.uniform_all_to_all_time(METADATA_BYTES, n)
        wire = network.all_to_all_time(np.asarray(sizes, dtype=np.float64))
        floor = max(
            max(c + d for c, d in zip(compress, decompress)), meta + wire
        )
        assert _run(network, compress, decompress, sizes, k).makespan() >= floor - 1e-12

    def test_fine_chunking_converges_to_the_floor(self):
        network = NetworkModel(bandwidth=1e9, latency=1e-6)
        compress = [2e-3] * 4
        decompress = [1e-3] * 4
        sizes = np.full((4, 4), 100_000)
        meta = network.uniform_all_to_all_time(METADATA_BYTES, 4)
        wire = network.all_to_all_time(sizes.astype(np.float64))
        floor = max(compress[0] + decompress[0], meta + wire)
        k = 256
        makespan = _run(network, compress, decompress, sizes, k).makespan()
        slack = 4.0 * (compress[0] + wire + decompress[0] + meta) / k
        assert floor - 1e-12 <= makespan <= floor + slack


def _run_split(network, compress, decompress, sizes, chunks, seed, *, overlap=True):
    """Like :func:`_run`, but every pair's payload is posted as a sequence
    of unevenly-sized per-slice buffers — the trainer's batch shape, which
    exercises the actual-byte-share chunk pricing."""
    n = len(compress)
    rng = np.random.default_rng(seed)
    sendbufs = []
    for src in range(n):
        row = []
        for dst in range(n):
            nbytes = int(sizes[src][dst])
            n_parts = int(rng.integers(1, 5))
            cuts = np.sort(rng.integers(0, nbytes + 1, size=n_parts - 1))
            bounds = [0, *cuts.tolist(), nbytes]
            row.append([b"x" * (bounds[i + 1] - bounds[i]) for i in range(n_parts)])
        sendbufs.append(row)
    sim = ClusterSimulator(n, network=network)
    sim.comm.compressed_all_to_all(
        sendbufs,
        metadata_bytes_per_entry=METADATA_BYTES,
        overlap=overlap,
        compress_seconds=compress,
        decompress_seconds=decompress,
        chunks_per_rank=chunks,
    )
    return sim


class TestVariableChunkPricingLaws:
    """The even-split laws that survive actual-byte-share pricing, over
    sequence-structured payloads: the per-rank wire total is unchanged, so
    the sequential/analytic bounds, the floor, and the k=1 degeneracy all
    still hold (chunk-count monotonicity is an even-split law and keeps its
    single-buffer harness above)."""

    @given(fabric_and_ranks(), st.integers(1, 12), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_bounded_by_sequential_and_analytic_k1(self, fabric, k, seed):
        network, n = fabric
        compress, decompress, sizes = _workload(n, seed)
        chunked = _run_split(network, compress, decompress, sizes, k, seed)
        sequential = _run_split(
            network, compress, decompress, sizes, k, seed, overlap=False
        )
        analytic = _analytic_k1(network, compress, decompress, sizes)
        assert chunked.makespan() <= sequential.makespan() + 1e-12
        assert chunked.makespan() <= analytic + 1e-12

    @given(fabric_and_ranks(), st.integers(1, 16), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_floor_and_wire_conservation(self, fabric, k, seed):
        network, n = fabric
        compress, decompress, sizes = _workload(n, seed)
        sim = _run_split(network, compress, decompress, sizes, k, seed)
        meta = network.uniform_all_to_all_time(METADATA_BYTES, n)
        wire = network.all_to_all_time(np.asarray(sizes, dtype=np.float64))
        floor = max(
            max(c + d for c, d in zip(compress, decompress)), meta + wire
        )
        assert sim.makespan() >= floor - 1e-12
        for rank in range(n):
            rank_wire = sum(
                e.duration
                for e in sim.timeline.events_for_rank(rank)
                if e.category == EventCategory.ALLTOALL_FWD
            )
            assert rank_wire == pytest.approx(wire, rel=1e-9, abs=1e-15)

    @given(fabric_and_ranks(), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_k1_degenerates_to_analytic_model(self, fabric, seed):
        network, n = fabric
        compress, decompress, sizes = _workload(n, seed)
        run = _run_split(network, compress, decompress, sizes, 1, seed)
        assert run.makespan() == pytest.approx(
            _analytic_k1(network, compress, decompress, sizes), rel=1e-12, abs=1e-15
        )
