"""Tests for the event timeline and category ledger."""

from __future__ import annotations

import pytest

from repro.dist import EventCategory, Timeline
from repro.profiling.breakdown import CATEGORY_LABELS


class TestEventCategory:
    def test_all_fifteen_stages_present(self):
        # 15 pipeline stages + 3 observability annotation categories
        # (train_step / publish / serve_request spans) + 4 fault-tolerance
        # categories (retry / checkpoint / restore / fault spans).
        assert len(list(EventCategory)) == 22

    def test_labels_cover_every_category(self):
        # Every member — including the obs/serve annotation categories —
        # must have a label, or new categories render unlabeled in reports.
        for member in EventCategory:
            assert member in CATEGORY_LABELS, f"no CATEGORY_LABELS entry for {member!r}"
        assert set(CATEGORY_LABELS) == set(EventCategory)

    def test_members_behave_as_strings(self):
        assert EventCategory.COMPRESS == "compress"
        assert str(EventCategory.ALLTOALL_FWD) == "alltoall_fwd"
        # Plain-string dict keys resolve through enum members and back.
        d = {"compress": 1.0}
        assert d[EventCategory.COMPRESS] == 1.0

    def test_communication_subset(self):
        comm = EventCategory.COMMUNICATION
        assert EventCategory.ALLTOALL_FWD in comm
        assert EventCategory.ALLTOALL_BWD in comm
        assert EventCategory.METADATA in comm
        assert EventCategory.ALLREDUCE in comm
        assert EventCategory.COMPRESS not in comm
        assert EventCategory.DECOMPRESS not in comm


class TestTimeline:
    def test_record_and_query(self):
        tl = Timeline()
        e = tl.record(0, EventCategory.COMPRESS, 1.0, 0.5)
        assert e.end == pytest.approx(1.5)
        assert len(tl) == 1
        assert tl.events_for_rank(0) == [e]
        assert tl.events_for_rank(1) == []
        assert tl.events_in_category(EventCategory.COMPRESS) == [e]

    def test_per_rank_aggregation(self):
        tl = Timeline()
        tl.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        tl.record(0, EventCategory.COMPRESS, 1.0, 2.0)
        tl.record(0, EventCategory.ALLTOALL_FWD, 3.0, 4.0)
        tl.record(1, EventCategory.COMPRESS, 0.0, 8.0)
        by_rank0 = tl.total_by_category(rank=0)
        assert by_rank0[EventCategory.COMPRESS] == pytest.approx(3.0)
        assert by_rank0[EventCategory.ALLTOALL_FWD] == pytest.approx(4.0)
        assert EventCategory.COMPRESS in tl.total_by_category(rank=1)
        assert tl.total_by_category(rank=1)[EventCategory.COMPRESS] == pytest.approx(8.0)

    def test_all_rank_aggregation_sums_everyone(self):
        tl = Timeline()
        tl.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        tl.record(1, EventCategory.COMPRESS, 0.0, 2.0)
        assert tl.total_by_category()[EventCategory.COMPRESS] == pytest.approx(3.0)

    def test_span(self):
        tl = Timeline()
        assert tl.span() == 0.0
        tl.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        tl.record(1, EventCategory.COMPRESS, 5.0, 2.5)
        assert tl.span() == pytest.approx(7.5)
        assert tl.span(rank=0) == pytest.approx(1.0)

    def test_ranks(self):
        tl = Timeline()
        tl.record(3, EventCategory.COMPRESS, 0.0, 1.0)
        tl.record(1, EventCategory.COMPRESS, 0.0, 1.0)
        assert tl.ranks() == [1, 3]

    def test_validation(self):
        tl = Timeline()
        with pytest.raises(ValueError):
            tl.record(-1, EventCategory.COMPRESS, 0.0, 1.0)
        with pytest.raises(ValueError):
            tl.record(0, EventCategory.COMPRESS, -1.0, 1.0)
        with pytest.raises(ValueError):
            tl.record(0, EventCategory.COMPRESS, 0.0, -1.0)


class TestChromeTrace:
    def _ledger(self) -> Timeline:
        tl = Timeline()
        tl.record(0, EventCategory.COMPRESS, 0.0, 0.5)
        tl.record(0, EventCategory.ALLTOALL_FWD, 0.5, 1.25)
        tl.record(2, EventCategory.DECOMPRESS, 1.75, 0.25)
        return tl

    def test_top_level_schema(self):
        trace = self._ledger().to_chrome_trace()
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert trace["displayTimeUnit"] == "ms"
        assert isinstance(trace["traceEvents"], list)

    def test_duration_events_schema(self):
        trace = self._ledger().to_chrome_trace()
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 3
        for e in xs:
            assert set(e) == {"name", "cat", "ph", "pid", "tid", "ts", "dur", "rank", "stream"}
            assert isinstance(e["name"], str)
            assert e["pid"] == 0
            assert isinstance(e["tid"], int)
            assert isinstance(e["ts"], float) and e["ts"] >= 0.0
            assert isinstance(e["dur"], float) and e["dur"] >= 0.0
            assert isinstance(e["rank"], int)
            assert isinstance(e["stream"], str)

    def test_microsecond_conversion_and_lane_mapping(self):
        trace = self._ledger().to_chrome_trace()
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        alltoall = next(e for e in xs if e["name"] == "alltoall_fwd")
        assert alltoall["ts"] == pytest.approx(0.5e6)
        assert alltoall["dur"] == pytest.approx(1.25e6)
        assert alltoall["tid"] == 0
        decompress = next(e for e in xs if e["name"] == "decompress")
        assert decompress["tid"] == 2

    def test_metadata_events_name_process_and_ranks(self):
        trace = self._ledger().to_chrome_trace(process_name="my-sim")
        metas = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["name"]: e for e in metas}
        assert names["process_name"]["args"]["name"] == "my-sim"
        thread_metas = [e for e in metas if e["name"] == "thread_name"]
        assert {e["tid"] for e in thread_metas} == {0, 2}

    def test_event_names_are_plain_strings(self):
        """Chrome chokes on non-string names; enum members must be rendered."""
        trace = self._ledger().to_chrome_trace()
        for e in trace["traceEvents"]:
            assert type(e["name"]) is str

    def test_json_serializable_roundtrip(self, tmp_path):
        import json

        tl = self._ledger()
        path = tl.dump_chrome_trace(tmp_path / "trace.json")
        loaded = json.loads(path.read_text())
        assert loaded == tl.to_chrome_trace()

    def test_empty_timeline_exports_cleanly(self):
        trace = Timeline().to_chrome_trace()
        assert [e["ph"] for e in trace["traceEvents"]] == ["M"]


class TestStreamLanes:
    def _overlapped_ledger(self) -> Timeline:
        from repro.dist import COMM_STREAM, COMPUTE_STREAM

        tl = Timeline()
        # Rank 0 compresses while its comm stream is on the wire; rank 1
        # only computes.
        tl.record(0, EventCategory.COMPRESS, 0.0, 1.0, stream=COMPUTE_STREAM)
        tl.record(0, EventCategory.ALLTOALL_FWD, 0.25, 1.0, stream=COMM_STREAM)
        tl.record(1, EventCategory.COMPRESS, 0.0, 0.5, stream=COMPUTE_STREAM)
        return tl

    def test_event_stream_defaults_to_compute(self):
        tl = Timeline()
        event = tl.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        assert event.stream == "compute"
        assert tl.streams() == ["compute"]

    def test_streams_listed_compute_first(self):
        tl = self._overlapped_ledger()
        assert tl.streams() == ["compute", "comm"]

    def test_overlapped_streams_get_distinct_tid_lanes(self):
        """The satellite fix: concurrent per-rank streams must not share a
        tid, or the trace renders them stacked in one lane."""
        trace = self._overlapped_ledger().to_chrome_trace()
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        rank0_tids = {e["tid"] for e in xs if e["name"] == "compress" and e["ts"] == 0.0}
        wire = next(e for e in xs if e["name"] == "alltoall_fwd")
        compress0 = next(e for e in xs if e["name"] == "compress" and e["dur"] == 1.0e6)
        assert wire["tid"] != compress0["tid"]
        # All tids are distinct per (rank, stream) and deterministic.
        assert len({e["tid"] for e in xs}) == 3

    def test_lane_metadata_names_rank_and_stream(self):
        trace = self._overlapped_ledger().to_chrome_trace()
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "rank 0 [compute]" in thread_names.values()
        assert "rank 0 [comm]" in thread_names.values()
        # One lane per (rank, stream) actually present.
        assert len(thread_names) == 3

    def test_single_stream_keeps_legacy_rank_tids(self):
        tl = Timeline()
        tl.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        tl.record(3, EventCategory.COMPRESS, 0.0, 1.0)
        trace = tl.to_chrome_trace()
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["tid"] for e in xs} == {0, 3}

    def test_simulator_overlap_run_round_trips_to_json(self, tmp_path):
        import json

        from repro.dist import ClusterSimulator

        sim = ClusterSimulator(2)
        sim.comm.compressed_all_to_all(
            [[b"x" * 1000] * 2] * 2,
            overlap=True,
            compress_seconds=[1e-4, 2e-4],
            decompress_seconds=[1e-4, 1e-4],
            chunks_per_rank=[4, 4],
        )
        path = sim.timeline.dump_chrome_trace(tmp_path / "overlap.json")
        loaded = json.loads(path.read_text())
        assert loaded == sim.timeline.to_chrome_trace()
        xs = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
        assert len({e["tid"] for e in xs}) == 4  # 2 ranks x 2 streams


class TestChunkTraceSchema:
    """Chunk events of the pipelined exchange in the chrome-trace export:
    distinct args per chunk, correct (rank, stream) lanes, JSON round-trip."""

    def _chunked_run(self):
        from repro.dist import ClusterSimulator

        sim = ClusterSimulator(2)
        sim.comm.compressed_all_to_all(
            [[b"x" * 1000] * 2] * 2,
            overlap=True,
            compress_seconds=[2e-4, 1e-4],
            decompress_seconds=[1e-4, 1e-4],
            chunks_per_rank=[3, 3],
        )
        return sim

    def test_event_args_recorded_per_chunk(self):
        sim = self._chunked_run()
        wire = sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD)
        for rank in (0, 1):
            rank_args = [e.args for e in wire if e.rank == rank]
            assert len(rank_args) == 3
            # Distinct args per chunk event, chunk count and exchange id set.
            assert len({tuple(sorted(a.items())) for a in rank_args}) == 3
            assert {a["chunk"] for a in rank_args} == {0, 1, 2}
            assert all(a["chunks"] == 3 for a in rank_args)
            assert len({a["exchange"] for a in rank_args}) == 1

    def test_exchange_ids_distinguish_back_to_back_exchanges(self):
        sim = self._chunked_run()
        sim.comm.compressed_all_to_all(
            [[b"y" * 500] * 2] * 2,
            overlap=True,
            compress_seconds=[1e-4, 1e-4],
            chunks_per_rank=[2, 2],
        )
        wire = sim.timeline.events_in_category(EventCategory.ALLTOALL_FWD)
        assert len({e.args["exchange"] for e in wire}) == 2

    def test_chunk_events_export_args_on_correct_lanes(self):
        sim = self._chunked_run()
        trace = sim.timeline.to_chrome_trace()
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        wire = [e for e in xs if e["name"] == "alltoall_fwd"]
        compress = [e for e in xs if e["name"] == "compress"]
        assert len(wire) == 6 and len(compress) == 6
        for e in wire:
            assert e["args"]["chunk"] in (0, 1, 2)
            assert thread_names[e["tid"]].endswith("[comm]")
        for e in compress:
            assert thread_names[e["tid"]].endswith("[compute]")
        # Wire chunks of one rank all share that rank's comm lane.
        rank0_wire_tids = {
            e["tid"] for e in wire if thread_names[e["tid"]].startswith("rank 0")
        }
        assert len(rank0_wire_tids) == 1

    def test_args_round_trip_through_dump(self, tmp_path):
        import json

        sim = self._chunked_run()
        path = sim.timeline.dump_chrome_trace(tmp_path / "chunks.json")
        loaded = json.loads(path.read_text())
        assert loaded == sim.timeline.to_chrome_trace()
        wire = [
            e
            for e in loaded["traceEvents"]
            if e["ph"] == "X" and e["name"] == "alltoall_fwd"
        ]
        assert all(set(e["args"]) == {"exchange", "chunk", "chunks"} for e in wire)

    def test_events_without_args_keep_the_plain_schema(self):
        tl = Timeline()
        tl.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        trace = tl.to_chrome_trace()
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert set(xs[0]) == {"name", "cat", "ph", "pid", "tid", "ts", "dur", "rank", "stream"}


class TestReleaseEdges:
    """Dependency edges on the ledger: validation, communicator
    population, and the chrome-trace round-trip the critical-path
    analyzer's offline mode relies on."""

    def test_edges_must_point_backwards(self):
        tl = Timeline()
        tl.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        e = tl.record(0, EventCategory.ALLTOALL_FWD, 1.0, 1.0, release_edges=[0])
        assert e.release_edges == (0,)
        with pytest.raises(ValueError):
            tl.record(0, EventCategory.DECOMPRESS, 2.0, 1.0, release_edges=[5])
        with pytest.raises(ValueError):
            tl.record(0, EventCategory.DECOMPRESS, 2.0, 1.0, release_edges=[-1])

    def test_edges_deduplicate_and_empty_collapses_to_none(self):
        tl = Timeline()
        tl.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        e = tl.record(0, EventCategory.ALLTOALL_FWD, 1.0, 1.0, release_edges=[0, 0])
        assert e.release_edges == (0,)
        plain = tl.record(0, EventCategory.DECOMPRESS, 2.0, 1.0, release_edges=[])
        assert plain.release_edges is None

    def _overlapped_sim(self):
        from repro.dist import ClusterSimulator

        sim = ClusterSimulator(2)
        sim.comm.compressed_all_to_all(
            [[b"x" * 1000] * 2] * 2,
            overlap=True,
            compress_seconds=[2e-4, 1e-4],
            decompress_seconds=[1e-4, 1e-4],
            chunks_per_rank=[3, 3],
        )
        return sim

    def test_communicator_populates_edges(self):
        sim = self._overlapped_sim()
        with_edges = [e for e in sim.timeline.events if e.release_edges]
        assert with_edges, "overlapped exchange must record release edges"
        for i, e in enumerate(sim.timeline.events):
            for dep in e.release_edges or ():
                assert 0 <= dep < i  # strictly backwards
                # A releaser finishes before (or exactly when) its
                # dependent starts.
                assert sim.timeline.events[dep].end <= e.start + 1e-12

    def test_edges_survive_the_chrome_trace_round_trip(self):
        sim = self._overlapped_sim()
        trace = sim.timeline.to_chrome_trace()
        rebuilt = Timeline.from_chrome_trace(trace)
        assert len(rebuilt.events) == len(sim.timeline.events)
        for original, back in zip(sim.timeline.events, rebuilt.events):
            assert back.rank == original.rank
            assert back.category == original.category
            assert back.stream == original.stream
            assert back.release_edges == original.release_edges
            assert back.start == pytest.approx(original.start, abs=1e-9)
            assert back.duration == pytest.approx(original.duration, abs=1e-9)

    def test_trace_entry_schema_with_edges(self):
        sim = self._overlapped_sim()
        trace = sim.timeline.to_chrome_trace()
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        flagged = [e for e in xs if "release_edges" in e]
        assert flagged
        for entry in flagged:
            assert isinstance(entry["release_edges"], list)
            assert all(isinstance(i, int) for i in entry["release_edges"])
        # Events without edges keep the plain schema (no null member).
        assert any("release_edges" not in e for e in xs)
