"""Tests for the event timeline and category ledger."""

from __future__ import annotations

import pytest

from repro.dist import EventCategory, Timeline
from repro.profiling.breakdown import CATEGORY_LABELS


class TestEventCategory:
    def test_all_fifteen_stages_present(self):
        assert len(list(EventCategory)) == 15

    def test_labels_cover_every_category(self):
        assert set(CATEGORY_LABELS) == set(EventCategory)

    def test_members_behave_as_strings(self):
        assert EventCategory.COMPRESS == "compress"
        assert str(EventCategory.ALLTOALL_FWD) == "alltoall_fwd"
        # Plain-string dict keys resolve through enum members and back.
        d = {"compress": 1.0}
        assert d[EventCategory.COMPRESS] == 1.0

    def test_communication_subset(self):
        comm = EventCategory.COMMUNICATION
        assert EventCategory.ALLTOALL_FWD in comm
        assert EventCategory.ALLTOALL_BWD in comm
        assert EventCategory.METADATA in comm
        assert EventCategory.ALLREDUCE in comm
        assert EventCategory.COMPRESS not in comm
        assert EventCategory.DECOMPRESS not in comm


class TestTimeline:
    def test_record_and_query(self):
        tl = Timeline()
        e = tl.record(0, EventCategory.COMPRESS, 1.0, 0.5)
        assert e.end == pytest.approx(1.5)
        assert len(tl) == 1
        assert tl.events_for_rank(0) == [e]
        assert tl.events_for_rank(1) == []
        assert tl.events_in_category(EventCategory.COMPRESS) == [e]

    def test_per_rank_aggregation(self):
        tl = Timeline()
        tl.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        tl.record(0, EventCategory.COMPRESS, 1.0, 2.0)
        tl.record(0, EventCategory.ALLTOALL_FWD, 3.0, 4.0)
        tl.record(1, EventCategory.COMPRESS, 0.0, 8.0)
        by_rank0 = tl.total_by_category(rank=0)
        assert by_rank0[EventCategory.COMPRESS] == pytest.approx(3.0)
        assert by_rank0[EventCategory.ALLTOALL_FWD] == pytest.approx(4.0)
        assert EventCategory.COMPRESS in tl.total_by_category(rank=1)
        assert tl.total_by_category(rank=1)[EventCategory.COMPRESS] == pytest.approx(8.0)

    def test_all_rank_aggregation_sums_everyone(self):
        tl = Timeline()
        tl.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        tl.record(1, EventCategory.COMPRESS, 0.0, 2.0)
        assert tl.total_by_category()[EventCategory.COMPRESS] == pytest.approx(3.0)

    def test_span(self):
        tl = Timeline()
        assert tl.span() == 0.0
        tl.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        tl.record(1, EventCategory.COMPRESS, 5.0, 2.5)
        assert tl.span() == pytest.approx(7.5)
        assert tl.span(rank=0) == pytest.approx(1.0)

    def test_ranks(self):
        tl = Timeline()
        tl.record(3, EventCategory.COMPRESS, 0.0, 1.0)
        tl.record(1, EventCategory.COMPRESS, 0.0, 1.0)
        assert tl.ranks() == [1, 3]

    def test_validation(self):
        tl = Timeline()
        with pytest.raises(ValueError):
            tl.record(-1, EventCategory.COMPRESS, 0.0, 1.0)
        with pytest.raises(ValueError):
            tl.record(0, EventCategory.COMPRESS, -1.0, 1.0)
        with pytest.raises(ValueError):
            tl.record(0, EventCategory.COMPRESS, 0.0, -1.0)
