"""Shared fixtures: representative embedding-batch generators.

The fixtures model the data regimes the paper analyses: batches with hot
repeated vectors (vector homogenization / LZ-friendly), Gaussian
concentrated values (entropy-friendly), and near-uniform unique vectors
(hard for everything).
"""

from __future__ import annotations

import numpy as np
import pytest


def make_hot_batch(
    rng: np.random.Generator,
    batch: int = 256,
    dim: int = 32,
    pool: int = 20,
    unique_fraction: float = 0.1,
    scale: float = 0.1,
) -> np.ndarray:
    """Batch dominated by repeats of a small pool of hot vectors."""
    pool_rows = rng.normal(0.0, scale, size=(pool, dim)).astype(np.float32)
    idx = rng.integers(0, pool, size=batch)
    data = pool_rows[idx].copy()
    n_unique = int(batch * unique_fraction)
    if n_unique:
        rows = rng.choice(batch, size=n_unique, replace=False)
        data[rows] = rng.normal(0.0, scale, size=(n_unique, dim)).astype(np.float32)
    return data


def make_gaussian_batch(
    rng: np.random.Generator, batch: int = 256, dim: int = 32, scale: float = 0.05
) -> np.ndarray:
    """All-unique batch with concentrated Gaussian values."""
    return rng.normal(0.0, scale, size=(batch, dim)).astype(np.float32)


def make_uniform_batch(
    rng: np.random.Generator, batch: int = 256, dim: int = 32, spread: float = 1.0
) -> np.ndarray:
    """All-unique batch with broadly spread values (hardest case)."""
    return rng.uniform(-spread, spread, size=(batch, dim)).astype(np.float32)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20240417)


@pytest.fixture
def hot_batch(rng: np.random.Generator) -> np.ndarray:
    return make_hot_batch(rng)


@pytest.fixture
def gaussian_batch(rng: np.random.Generator) -> np.ndarray:
    return make_gaussian_batch(rng)


@pytest.fixture
def uniform_batch(rng: np.random.Generator) -> np.ndarray:
    return make_uniform_batch(rng)
