"""DeltaPublisher: bounded staleness, error feedback, wire accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive import AdaptiveController, OfflineAnalyzer
from repro.data import SyntheticClickDataset, make_uniform_spec
from repro.dist import ClusterSimulator
from repro.model import DLRM, DLRMConfig
from repro.serve import DeltaPublisher, build_serving_tier
from repro.train import CompressionPipeline, HybridParallelTrainer

N_TABLES = 5
CARDINALITY = 300


@pytest.fixture()
def trainer():
    spec = make_uniform_spec(
        "serve-pub", n_tables=N_TABLES, cardinality=CARDINALITY, zipf_exponent=1.2
    )
    dataset = SyntheticClickDataset(spec, seed=31, teacher_scale=3.0)
    config = DLRMConfig.from_dataset(spec, embedding_dim=8, seed=32)
    model = DLRM(config)
    batch = dataset.batch(128, batch_index=10_000_000)
    samples = {j: model.lookup(j, batch.sparse[:, j]) for j in range(N_TABLES)}
    plan = OfflineAnalyzer().analyze(samples)
    pipeline = CompressionPipeline(AdaptiveController(plan))
    return HybridParallelTrainer(
        model, dataset, ClusterSimulator(2), pipeline=pipeline, lr=0.2
    )


def trainer_table(trainer, t):
    return trainer.model.tables[t].weight.data.astype(np.float32)


class TestStalenessBound:
    def test_published_state_within_bound_after_each_round(self, trainer):
        """The satellite test: error feedback keeps |trainer - published|
        within the per-table publication bound after *every* round — the
        bound does not accumulate across publications."""
        tier = build_serving_tier(trainer, n_shard_ranks=2, n_replicas=1, cache_rows=64)
        publisher = tier.publisher
        controller = trainer.pipeline.controller
        for round_index in range(4):
            trainer.train_step(64, iteration=round_index)
            report = publisher.publish(iteration=round_index)
            for t in range(N_TABLES):
                bound = controller.error_bound(t, round_index)
                gap = np.max(
                    np.abs(trainer_table(trainer, t) - publisher.published_table(t))
                )
                assert gap <= bound * (1 + 1e-5), f"table {t}, round {round_index}"
            assert report.max_abs_error <= report.staleness_bound * (1 + 1e-5)
            assert publisher.staleness() <= report.staleness_bound * (1 + 1e-5)

    def test_served_rows_within_publication_plus_storage_bound(self, trainer):
        """End-to-end: a row served from the recompressed shard is within
        (publication bound + shard-storage bound) of the trainer's row."""
        tier = build_serving_tier(trainer, n_shard_ranks=2, n_replicas=1, cache_rows=0)
        controller = trainer.pipeline.controller
        trainer.train_step(64, iteration=0)
        tier.publisher.publish(iteration=0)
        for rank, server in enumerate(tier.servers):
            for t in tier.sharding.tables_of(rank):
                stored = server.table_array(t)
                total_bound = controller.error_bound(t, 0) + server.error_bound(t)
                gap = np.max(np.abs(stored - trainer_table(trainer, t)))
                assert gap <= total_bound * (1 + 1e-5)

    def test_lossless_shards_meet_publication_bound_exactly(self, trainer):
        tier = build_serving_tier(
            trainer, n_shard_ranks=2, n_replicas=1, cache_rows=0, shard_error_bound=0.0
        )
        trainer.train_step(64, iteration=0)
        report = tier.publisher.publish(iteration=0)
        for rank, server in enumerate(tier.servers):
            for t in tier.sharding.tables_of(rank):
                gap = np.max(np.abs(server.table_array(t) - trainer_table(trainer, t)))
                bound = trainer.pipeline.controller.error_bound(t, 0)
                assert gap <= bound * (1 + 1e-5)
        assert report.staleness_bound > 0

    def test_raw_publication_is_exact(self, trainer):
        tier = build_serving_tier(
            trainer,
            n_shard_ranks=2,
            n_replicas=1,
            cache_rows=0,
            shard_error_bound=0.0,
            compress_publication=False,
        )
        trainer.train_step(64, iteration=0)
        report = tier.publisher.publish(iteration=0)
        assert report.staleness_bound == 0.0
        assert report.max_abs_error == 0.0
        for rank, server in enumerate(tier.servers):
            for t in tier.sharding.tables_of(rank):
                np.testing.assert_array_equal(
                    server.table_array(t), trainer_table(trainer, t)
                )


class TestWireAccounting:
    def test_compressed_ships_fewer_bytes_than_raw(self, trainer):
        compressed_tier = build_serving_tier(trainer, 2, 1, cache_rows=0)
        raw_tier = build_serving_tier(
            trainer, 2, 1, cache_rows=0, compress_publication=False
        )
        trainer.train_step(64, iteration=0)
        compressed = compressed_tier.publisher.publish(iteration=0)
        raw = raw_tier.publisher.publish(iteration=0)
        assert compressed.raw_nbytes == raw.raw_nbytes == raw.wire_nbytes
        assert compressed.wire_nbytes < raw.wire_nbytes
        assert compressed.compression_ratio > 2.0
        assert raw.compression_ratio == pytest.approx(1.0)

    def test_wire_priced_through_the_communicator(self, trainer):
        tier = build_serving_tier(trainer, 2, 1, cache_rows=0)
        trainer.train_step(64, iteration=0)
        report = tier.publisher.publish(iteration=0)
        assert report.wire_seconds > 0
        events = tier.publisher.simulator.timeline.events
        assert events, "publication must charge the publication fabric"
        categories = {str(e.category) for e in events}
        assert "alltoall_fwd" in categories
        assert "metadata" in categories  # stage-② of the compressed exchange
        assert report.downtime_seconds >= report.wire_seconds

    def test_per_table_records(self, trainer):
        tier = build_serving_tier(trainer, 2, 1, cache_rows=0)
        trainer.train_step(64, iteration=0)
        report = tier.publisher.publish(iteration=0)
        assert sorted(t.table_id for t in report.tables) == list(range(N_TABLES))
        for record in report.tables:
            assert record.wire_nbytes > 0
            assert record.raw_nbytes == CARDINALITY * 8 * 4
            assert record.codec == trainer.pipeline.controller.compressor_name(
                record.table_id
            )


class TestReplicaInvalidation:
    def test_publication_drops_stale_cached_rows(self, trainer):
        tier = build_serving_tier(trainer, 2, 1, cache_rows=256)
        replica = tier.replicas[0]
        replica.gather(np.arange(N_TABLES) % CARDINALITY)
        assert len(replica) == N_TABLES
        trainer.train_step(64, iteration=0)
        tier.publisher.publish(iteration=0)
        assert len(replica) == 0  # every table updated -> every row stale

    def test_cache_refill_serves_fresh_rows(self, trainer):
        tier = build_serving_tier(
            trainer, 2, 1, cache_rows=256, shard_error_bound=0.0
        )
        replica = tier.replicas[0]
        request = np.arange(N_TABLES) % CARDINALITY
        replica.gather(request)
        trainer.train_step(64, iteration=0)
        tier.publisher.publish(iteration=0)
        fresh = replica.gather(request)
        for t in range(N_TABLES):
            np.testing.assert_array_equal(
                fresh.rows[t], tier.publisher.published_table(t)[request[t]]
            )


class TestValidation:
    def test_compressed_publication_needs_pipeline(self, trainer):
        bare = HybridParallelTrainer(
            trainer.model, trainer.dataset, ClusterSimulator(2), lr=0.2
        )
        with pytest.raises(ValueError, match="CompressionPipeline"):
            build_serving_tier(bare, 2, 1, cache_rows=0)

    def test_raw_publication_works_without_pipeline(self, trainer):
        bare = HybridParallelTrainer(
            trainer.model, trainer.dataset, ClusterSimulator(2), lr=0.2
        )
        tier = build_serving_tier(bare, 2, 1, cache_rows=0, compress_publication=False)
        report = tier.publisher.publish()
        assert report.wire_nbytes == report.raw_nbytes

    def test_too_many_shard_ranks(self, trainer):
        with pytest.raises(ValueError, match="cannot populate"):
            build_serving_tier(trainer, N_TABLES + 1, 1, cache_rows=0)

    def test_sharding_required_without_replicas(self, trainer):
        tier = build_serving_tier(trainer, 2, 1, cache_rows=0)
        with pytest.raises(ValueError, match="sharding"):
            DeltaPublisher(trainer, tier.servers, ())
