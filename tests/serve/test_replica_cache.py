"""InferenceReplica: hot-row LRU semantics and hit-rate monotonicity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import EmbeddingShardServer, InferenceReplica
from repro.train.sharding import ShardingPlan


def make_tier(n_tables=4, rows=128, dim=8, n_shards=2, cache_rows=16, seed=0):
    rng = np.random.default_rng(seed)
    sharding = ShardingPlan.round_robin(n_tables, n_shards)
    servers = []
    for rank in range(n_shards):
        tables = {
            t: rng.normal(0.0, 0.05, size=(rows, dim)).astype(np.float32)
            for t in sharding.tables_of(rank)
        }
        servers.append(
            EmbeddingShardServer(tables, error_bounds=0.0, rows_per_block=32)
        )
    replica = InferenceReplica(0, servers, sharding, cache_rows=cache_rows)
    return replica, servers, sharding


def zipf_trace(n_requests, n_tables, rows, seed=1, exponent=1.4):
    rng = np.random.default_rng(seed)
    ranks = np.minimum(rng.zipf(exponent, size=(n_requests, n_tables)) - 1, rows - 1)
    return ranks.astype(np.int64)


class TestCacheSemantics:
    def test_first_gather_misses_then_hits(self):
        replica, _, _ = make_tier()
        request = np.array([3, 7, 11, 15])
        first = replica.gather(request)
        assert first.hits == 0 and first.misses == 4
        assert first.fanout == 2  # tables round-robin over 2 shard nodes
        second = replica.gather(request)
        assert second.hits == 4 and second.misses == 0
        assert second.pulls == ()

    def test_rows_match_servers(self):
        replica, servers, sharding = make_tier()
        request = np.array([5, 9, 64, 127])
        result = replica.gather(request)
        for t in range(4):
            expected = servers[sharding.owner_of(t)].lookup_rows(
                t, np.array([request[t]])
            )[0]
            np.testing.assert_array_equal(result.rows[t], expected)
        # Cached path returns the identical rows.
        again = replica.gather(request)
        np.testing.assert_array_equal(again.rows, result.rows)

    def test_capacity_respected_and_lru_evicts_oldest(self):
        replica, _, _ = make_tier(n_tables=1, n_shards=1, cache_rows=3)
        for row in (0, 1, 2):
            replica.gather(np.array([row]))
        assert len(replica) == 3
        replica.gather(np.array([0]))  # refresh row 0
        replica.gather(np.array([3]))  # evicts row 1 (least recent)
        assert len(replica) == 3
        assert replica.gather(np.array([0])).hits == 1
        assert replica.gather(np.array([1])).hits == 0  # evicted

    def test_zero_capacity_disables_caching(self):
        replica, _, _ = make_tier(cache_rows=0)
        request = np.array([1, 2, 3, 4])
        replica.gather(request)
        assert replica.gather(request).hits == 0
        assert len(replica) == 0

    def test_invalidate_tables(self):
        replica, _, _ = make_tier()
        replica.gather(np.array([1, 2, 3, 4]))
        dropped = replica.invalidate_tables([0, 2])
        assert dropped == 2
        assert replica.cached_tables() == {1, 3}
        result = replica.gather(np.array([1, 2, 3, 4]))
        assert result.hits == 2 and result.misses == 2


class TestHitRateMonotonicity:
    def test_hit_rate_monotone_in_cache_size(self):
        """The satellite invariant: LRU's stack (inclusion) property makes
        the hit rate non-decreasing in capacity on any fixed trace."""
        trace = zipf_trace(600, n_tables=4, rows=128)
        rates = []
        for cache_rows in (0, 4, 16, 64, 256, 1024):
            replica, _, _ = make_tier(cache_rows=cache_rows)
            for request in trace:
                replica.gather(request)
            rates.append(replica.hit_rate)
        assert rates == sorted(rates)
        assert rates[-1] > rates[1] > 0.0  # skew makes caching productive

    def test_zipf_skew_beats_uniform(self):
        """Hot-row skew is what the cache exploits: at equal capacity a
        Zipf trace hits far more than a uniform one."""
        n, rows = 500, 128
        rng = np.random.default_rng(9)
        uniform = rng.integers(0, rows, size=(n, 4))
        skewed = zipf_trace(n, 4, rows, exponent=1.6)
        rates = {}
        for name, trace in (("uniform", uniform), ("zipf", skewed)):
            replica, _, _ = make_tier(cache_rows=32)
            for request in trace:
                replica.gather(np.asarray(request, dtype=np.int64))
            rates[name] = replica.hit_rate
        assert rates["zipf"] > rates["uniform"] + 0.2


class TestValidation:
    def test_sharding_server_mismatch(self):
        replica, servers, sharding = make_tier()
        with pytest.raises(ValueError, match="shard ranks"):
            InferenceReplica(1, servers[:1], sharding, cache_rows=4)

    def test_missing_table_on_shard(self):
        _, servers, sharding = make_tier()
        swapped = [servers[1], servers[0]]  # wrong ownership
        with pytest.raises(ValueError, match="missing tables"):
            InferenceReplica(0, swapped, sharding, cache_rows=4)

    def test_bad_request_shape(self):
        replica, _, _ = make_tier()
        with pytest.raises(ValueError, match="one per table"):
            replica.gather(np.array([1, 2]))

    def test_negative_cache_rejected(self):
        _, servers, sharding = make_tier()
        with pytest.raises(ValueError, match="cache_rows"):
            InferenceReplica(0, servers, sharding, cache_rows=-1)
