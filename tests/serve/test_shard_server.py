"""EmbeddingShardServer: row-granular decode over compressed shards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import DLRM, DLRMConfig
from repro.serve import EmbeddingShardServer


def make_table(rows=200, dim=16, seed=0, scale=0.1):
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, scale, size=(rows, dim)).astype(np.float32)


class TestRowGranularLookups:
    def test_lookup_matches_full_decode(self):
        table = make_table()
        server = EmbeddingShardServer({0: table}, error_bounds=1e-2, rows_per_block=32)
        ids = np.array([0, 5, 31, 32, 63, 64, 199, 5])
        rows = server.lookup_rows(0, ids)
        assert rows.shape == (ids.size, 16)
        full = server.table_array(0)
        np.testing.assert_array_equal(rows, full[ids])

    def test_lookup_within_error_bound(self):
        table = make_table()
        bound = 5e-3
        server = EmbeddingShardServer({0: table}, error_bounds=bound)
        ids = np.arange(200)
        rows = server.lookup_rows(0, ids)
        assert np.max(np.abs(rows - table)) <= bound * (1 + 1e-6)

    def test_error_bound_zero_is_bit_identical_to_raw(self):
        """The satellite contract: at bound 0 the shard stores losslessly,
        so compressed lookups equal the raw rows bit for bit."""
        table = make_table(rows=150, dim=8)
        server = EmbeddingShardServer({0: table}, error_bounds=0.0, rows_per_block=37)
        ids = np.array([0, 1, 36, 37, 74, 149, 0])
        np.testing.assert_array_equal(server.lookup_rows(0, ids), table[ids])
        assert server.codec(0) == "lz4_like"
        np.testing.assert_array_equal(server.table_array(0), table)

    def test_pull_accounts_touched_blocks_only(self):
        table = make_table(rows=256)
        server = EmbeddingShardServer({0: table}, rows_per_block=64)
        pull = server.pull(0, np.array([0, 1, 2, 70]))  # blocks 0 and 1
        assert pull.blocks_touched == 2
        assert 0 < pull.compressed_nbytes < server.compressed_nbytes(0)
        assert pull.raw_nbytes == 2 * 64 * 16 * 4
        whole = server.pull(0, np.arange(256))
        assert whole.blocks_touched == 4
        assert whole.compressed_nbytes == server.compressed_nbytes(0)

    def test_partial_last_block(self):
        table = make_table(rows=100)
        server = EmbeddingShardServer({0: table}, error_bounds=0.0, rows_per_block=64)
        pull = server.pull(0, np.array([99]))
        assert pull.blocks_touched == 1
        assert pull.raw_nbytes == 36 * 16 * 4  # last block holds 36 rows
        np.testing.assert_array_equal(pull.rows[0], table[99])

    def test_empty_pull(self):
        server = EmbeddingShardServer({0: make_table()})
        pull = server.pull(0, np.array([], dtype=np.int64))
        assert pull.n_rows == 0 and pull.blocks_touched == 0
        assert pull.compressed_nbytes == 0


class TestCompressionAccounting:
    def test_compressible_table_shrinks(self):
        # Concentrated values quantize to few symbols -> real compression.
        server = EmbeddingShardServer({0: make_table(scale=0.02)}, error_bounds=1e-2)
        assert server.compressed_nbytes() < server.raw_nbytes()
        assert server.compression_ratio() > 1.5

    def test_per_table_bounds_and_codecs(self):
        tables = {0: make_table(seed=1), 3: make_table(seed=2)}
        server = EmbeddingShardServer(
            tables,
            error_bounds={0: 1e-2, 3: 0.0},
            codecs={0: "vector_lz", 3: "entropy"},
        )
        assert server.codec(0) == "vector_lz"
        assert server.codec(3) == "lz4_like"  # bound 0 forces lossless
        assert server.error_bound(0) == 1e-2
        assert server.table_ids() == (0, 3)

    def test_from_model_with_controller(self):
        from repro.adaptive import AdaptiveController, OfflineAnalyzer

        config = DLRMConfig(
            n_dense=4, table_cardinalities=(120, 90), embedding_dim=8, seed=3
        )
        model = DLRM(config)
        samples = {
            t: model.lookup(t, np.arange(60) % config.table_cardinalities[t])
            for t in range(2)
        }
        controller = AdaptiveController(OfflineAnalyzer().analyze(samples))
        server = EmbeddingShardServer.from_model(model, [0, 1], controller)
        for t in range(2):
            assert server.codec(t) == controller.compressor_name(t)
            assert server.error_bound(t) == controller.error_bound(t, 0)
            stored = server.table_array(t)
            raw = model.tables[t].weight.data.astype(np.float32)
            assert np.max(np.abs(stored - raw)) <= server.error_bound(t) * (1 + 1e-6)


class TestUpdates:
    def test_set_table_replaces_contents(self):
        table = make_table()
        server = EmbeddingShardServer({0: table}, error_bounds=0.0)
        new = table + 1.0
        server.set_table(0, new)
        np.testing.assert_array_equal(server.table_array(0), new)

    def test_set_table_shape_mismatch(self):
        server = EmbeddingShardServer({0: make_table()})
        with pytest.raises(ValueError, match="expected shape"):
            server.set_table(0, np.zeros((3, 3), dtype=np.float32))


class TestValidation:
    def test_unknown_table(self):
        server = EmbeddingShardServer({2: make_table()})
        with pytest.raises(KeyError, match="not sharded here"):
            server.pull(0, np.array([0]))

    def test_out_of_range_rows(self):
        server = EmbeddingShardServer({0: make_table(rows=10)})
        with pytest.raises(IndexError):
            server.pull(0, np.array([10]))

    def test_needs_tables(self):
        with pytest.raises(ValueError, match="at least one table"):
            EmbeddingShardServer({})

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError, match="error_bound"):
            EmbeddingShardServer({0: make_table()}, error_bounds=-1.0)
