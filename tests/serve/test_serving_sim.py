"""ServingSimulator: determinism, monotonicity, and fabric pricing."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.data import SyntheticClickDataset, make_uniform_spec
from repro.dist import IB_HDR_LIKE, NVLINK_LIKE, PCIE_LIKE, NetworkModel, Topology
from repro.model import DLRM, DLRMConfig
from repro.serve import (
    EmbeddingShardServer,
    InferenceReplica,
    RequestLoadGenerator,
    ServingSimulator,
)
from repro.train.sharding import ShardingPlan

N_TABLES = 6
ROWS = 400
DIM = 16


@pytest.fixture(scope="module")
def world():
    spec = make_uniform_spec(
        "serve-sim", n_tables=N_TABLES, cardinality=ROWS, zipf_exponent=1.4
    )
    dataset = SyntheticClickDataset(spec, seed=21)
    config = DLRMConfig.from_dataset(spec, embedding_dim=DIM, seed=22)
    model = DLRM(config)
    return spec, dataset, config, model


def build_tier(model, n_shards=2, n_replicas=2, cache_rows=512, error_bound=1e-2):
    sharding = ShardingPlan.round_robin(N_TABLES, n_shards)
    servers = [
        EmbeddingShardServer.from_model(
            model, sharding.tables_of(rank), error_bound=error_bound, rows_per_block=32
        )
        for rank in range(n_shards)
    ]
    replicas = [
        InferenceReplica(i, servers, sharding, cache_rows) for i in range(n_replicas)
    ]
    return servers, replicas, sharding


def run_once(world, *, cache_rows=512, n_replicas=2, network=None, n_requests=400, qps=2000.0):
    spec, dataset, config, model = world
    _, replicas, _ = build_tier(model, n_replicas=n_replicas, cache_rows=cache_rows)
    sim = ServingSimulator(replicas, config, network=network)
    requests = RequestLoadGenerator(dataset, qps=qps, seed=7).generate(n_requests)
    return sim.run(requests)


class TestDeterminism:
    def test_identical_runs_identical_reports(self, world):
        """The satellite contract: a fixed seed fixes the whole report."""
        a = run_once(world)
        b = run_once(world)
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_report_sanity(self, world):
        report = run_once(world)
        assert report.n_requests == 400
        assert 0.0 < report.p50_latency <= report.p99_latency <= report.max_latency
        assert report.mean_latency > 0
        assert 0.0 <= report.cache_hit_rate <= 1.0
        assert report.hits + report.misses == 400 * N_TABLES
        assert 0.0 <= report.mean_fanout <= 2.0  # at most both shard nodes
        assert report.pulled_compressed_nbytes < report.pulled_raw_nbytes
        assert sum(report.replica_requests) == 400
        assert report.sustained_qps > 0


class TestExactRankPercentiles:
    """PR-6 satellite: the report's p50/p99 come from the metrics
    registry's exact-rank estimator, not ``np.percentile`` — on small
    samples every quantile is a latency some request actually saw, with
    rank ``max(1, ceil(q * n))``, never an interpolated value."""

    def test_small_sample_percentiles_are_observed_latencies(self, world):
        report = run_once(world, n_requests=7)
        # recompute the per-request latencies independently of the report
        spec, dataset, config, model = world
        _, replicas, _ = build_tier(model, n_replicas=2, cache_rows=512)
        sim = ServingSimulator(replicas, config)
        requests = RequestLoadGenerator(dataset, qps=2000.0, seed=7).generate(7)
        requests = sorted(requests, key=lambda r: r.arrival_seconds)
        free = [0.0, 0.0]
        latencies = []
        for i, request in enumerate(requests):
            replica_index = i % 2
            seconds, _ = sim.service_seconds(replica_index, request)
            start = max(request.arrival_seconds, free[replica_index])
            free[replica_index] = start + seconds
            latencies.append(start + seconds - request.arrival_seconds)
        ordered = sorted(latencies)
        # exact-rank order statistics on n=7: p50 -> rank 4, p99 -> rank 7
        assert report.p50_latency == ordered[3]
        assert report.p99_latency == ordered[6]
        assert report.p50_latency in latencies
        assert report.p99_latency in latencies

    def test_p99_is_max_on_samples_under_100(self, world):
        report = run_once(world, n_requests=50)
        assert report.p99_latency == report.max_latency


class TestCacheMonotonicity:
    def test_hit_rate_monotone_in_cache_size(self, world):
        rates = [
            run_once(world, cache_rows=c).cache_hit_rate for c in (0, 64, 256, 1024, 4096)
        ]
        assert rates == sorted(rates)
        assert rates[0] == 0.0 and rates[-1] > 0.5

    def test_more_cache_means_less_pulled_bytes(self, world):
        small = run_once(world, cache_rows=32)
        large = run_once(world, cache_rows=2048)
        assert large.pulled_compressed_nbytes < small.pulled_compressed_nbytes


class TestFabricPricing:
    def test_slower_inter_fabric_raises_latency(self, world):
        """Replicas on node 0, shards on node 1: every miss crosses the
        inter link, so any hierarchical fabric serves slower than flat
        NVLink — while hit rate and pulled bytes (data-path properties)
        are fabric-invariant.  Small pulls are latency-dominated, so the
        HDR-IB class (1.5 us hops) prices *above* the PCIe class (1.2 us
        hops) despite its higher bandwidth."""
        reports = {}
        for name, inter in (("ib", IB_HDR_LIKE), ("pcie", PCIE_LIKE)):
            topology = Topology.hierarchical(2, 2, NVLINK_LIKE, inter)
            reports[name] = run_once(
                world, network=NetworkModel.from_topology(topology), cache_rows=64
            )
        flat = run_once(
            world,
            network=NetworkModel.from_topology(Topology.flat(4, NVLINK_LIKE)),
            cache_rows=64,
        )
        assert flat.mean_latency < reports["pcie"].mean_latency < reports["ib"].mean_latency
        for report in reports.values():
            assert report.cache_hit_rate == flat.cache_hit_rate
            assert report.pulled_compressed_nbytes == flat.pulled_compressed_nbytes

    def test_topology_must_span_the_tier(self, world):
        spec, dataset, config, model = world
        _, replicas, _ = build_tier(model, n_shards=2, n_replicas=4)
        small = NetworkModel.from_topology(Topology.flat(4, NVLINK_LIKE))
        with pytest.raises(ValueError, match="spans 4 ranks"):
            ServingSimulator(replicas, config, network=small)  # needs 6


class TestQueueing:
    def test_overload_shows_up_as_tail_latency(self, world):
        """Open-loop arrivals beyond capacity queue without bound: the p99
        at heavy offered load dominates the light-load p99."""
        light = run_once(world, qps=500.0, n_requests=300)
        heavy = run_once(world, qps=200_000.0, n_requests=300)
        assert heavy.p99_latency > 5 * light.p99_latency
        assert heavy.sustained_qps < 200_000.0

    def test_more_replicas_sustain_more_qps(self, world):
        """At saturating offered load, doubling replicas must raise
        sustained throughput."""
        few = run_once(world, n_replicas=1, qps=500_000.0, n_requests=600)
        many = run_once(world, n_replicas=4, qps=500_000.0, n_requests=600)
        assert many.sustained_qps > 1.5 * few.sustained_qps

    def test_interleaved_traces_are_served_in_arrival_order(self, world):
        """run() sorts by arrival, so a merged multi-class trace prices
        identically to the pre-sorted one."""
        spec, dataset, config, model = world
        _, replicas_a, _ = build_tier(model)
        sim_a = ServingSimulator(replicas_a, config)
        a = RequestLoadGenerator(dataset, qps=1500.0, seed=7).generate(80)
        b = RequestLoadGenerator(dataset, qps=1500.0, seed=8).generate(80)
        merged = sim_a.run(a + b)
        _, replicas_b, _ = build_tier(model)
        sim_b = ServingSimulator(replicas_b, config)
        presorted = sim_b.run(sorted(a + b, key=lambda r: r.arrival_seconds))
        assert dataclasses.asdict(merged) == dataclasses.asdict(presorted)

    def test_publication_window_delays_early_requests(self, world):
        spec, dataset, config, model = world
        _, replicas, _ = build_tier(model)
        sim = ServingSimulator(replicas, config)
        requests = RequestLoadGenerator(dataset, qps=2000.0, seed=7).generate(100)
        baseline = sim.run(requests)
        _, replicas2, _ = build_tier(model)
        sim2 = ServingSimulator(replicas2, config)
        delayed = sim2.run(requests, replica_available_at=0.05)
        assert delayed.max_latency > baseline.max_latency
        assert delayed.p99_latency >= baseline.p99_latency


class TestValidation:
    def test_needs_replicas(self, world):
        spec, dataset, config, model = world
        with pytest.raises(ValueError, match="at least one replica"):
            ServingSimulator([], config)

    def test_replicas_must_share_tier(self, world):
        spec, dataset, config, model = world
        _, replicas_a, _ = build_tier(model)
        _, replicas_b, _ = build_tier(model)
        with pytest.raises(ValueError, match="share one shard-server tier"):
            ServingSimulator([replicas_a[0], replicas_b[0]], config)

    def test_needs_requests(self, world):
        spec, dataset, config, model = world
        _, replicas, _ = build_tier(model)
        with pytest.raises(ValueError, match="at least one request"):
            ServingSimulator(replicas, config).run([])
