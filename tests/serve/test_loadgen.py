"""RequestLoadGenerator: deterministic open-loop Poisson arrivals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticClickDataset, make_uniform_spec
from repro.serve import RequestLoadGenerator


@pytest.fixture(scope="module")
def dataset():
    return SyntheticClickDataset(
        make_uniform_spec("serve-load", n_tables=6, cardinality=500), seed=11
    )


class TestDeterminism:
    def test_same_seed_replays_the_trace(self, dataset):
        a = RequestLoadGenerator(dataset, qps=1000.0, seed=5).generate(50)
        b = RequestLoadGenerator(dataset, qps=1000.0, seed=5).generate(50)
        for x, y in zip(a, b):
            assert x.arrival_seconds == y.arrival_seconds
            np.testing.assert_array_equal(x.sparse, y.sparse)
            np.testing.assert_array_equal(x.dense, y.dense)

    def test_different_seeds_differ(self, dataset):
        a = RequestLoadGenerator(dataset, qps=1000.0, seed=5).generate(50)
        b = RequestLoadGenerator(dataset, qps=1000.0, seed=6).generate(50)
        assert [r.arrival_seconds for r in a] != [r.arrival_seconds for r in b]

    def test_consecutive_calls_continue_the_trace(self, dataset):
        gen = RequestLoadGenerator(dataset, qps=1000.0, seed=5)
        first = gen.generate(20)
        second = gen.generate(20)
        assert second[0].arrival_seconds > first[-1].arrival_seconds
        assert [r.request_id for r in first + second] == list(range(40))


class TestShape:
    def test_request_content_is_criteo_shaped(self, dataset):
        gen = RequestLoadGenerator(dataset, qps=500.0, seed=0)
        (request,) = gen.generate(1)
        assert request.sparse.shape == (6,)
        assert request.sparse.dtype == np.int64
        assert request.dense.shape == (dataset.spec.n_dense,)
        assert (request.sparse >= 0).all()
        assert (request.sparse < 500).all()

    def test_arrivals_strictly_increase(self, dataset):
        arrivals = [
            r.arrival_seconds
            for r in RequestLoadGenerator(dataset, qps=2000.0, seed=1).generate(200)
        ]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_mean_interarrival_matches_qps(self, dataset):
        qps = 4000.0
        requests = RequestLoadGenerator(dataset, qps=qps, seed=2).generate(4000)
        gaps = np.diff([0.0] + [r.arrival_seconds for r in requests])
        assert gaps.mean() == pytest.approx(1.0 / qps, rel=0.1)
        # Exponential gaps: std ~= mean (Poisson process signature).
        assert gaps.std() == pytest.approx(gaps.mean(), rel=0.15)

    def test_ids_follow_table_skew(self, dataset):
        """Zipf-skewed specs concentrate ids on few hot rows."""
        requests = RequestLoadGenerator(dataset, qps=100.0, seed=3).generate(2000)
        ids = np.array([r.sparse for r in requests])
        top_share = max(
            np.bincount(ids[:, 0], minlength=500).max() / len(requests), 0.0
        )
        assert top_share > 0.05  # the hottest row draws well above uniform (0.002)


class TestValidation:
    def test_positive_qps_required(self, dataset):
        with pytest.raises(ValueError):
            RequestLoadGenerator(dataset, qps=0.0)

    def test_positive_count_required(self, dataset):
        with pytest.raises(ValueError):
            RequestLoadGenerator(dataset, qps=10.0).generate(0)
