"""Smoke tests for the example scripts.

The two light examples run end to end; the heavier training examples are
compile-checked so a syntax or import regression still fails fast (their
full runs happen in documentation workflows, not unit tests).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load_module(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestLightExamples:
    def test_quickstart_runs(self, capsys):
        module = _load_module("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "hybrid" in out
        assert "Compressor comparison" in out

    def test_compressor_tuning_runs(self, capsys):
        module = _load_module("compressor_tuning")
        module.window_sweep()
        module.buffer_optimization()
        out = capsys.readouterr().out
        assert "window" in out.lower()
        assert "Buffer optimization" in out

    def test_obs_day_in_the_life_runs(self, capsys, tmp_path):
        module = _load_module("obs_day_in_the_life")
        module.main(["--out", str(tmp_path / "obs"), "--iterations", "2", "--requests", "50"])
        out = capsys.readouterr().out
        assert "Day in the life" in out
        assert "serve p99" in out
        for artifact in ("metrics.json", "metrics.prom", "obs_trace.json", "run_report.txt"):
            assert (tmp_path / "obs" / artifact).exists(), artifact

    def test_quickstart_batch_is_representative(self):
        module = _load_module("quickstart")
        batch = module.make_lookup_batch(batch=256, dim=16, seed=1)
        assert batch.shape == (256, 16)
        assert batch.dtype.name == "float32"


class TestHeavyExamplesCompile:
    @pytest.mark.parametrize(
        "name",
        [
            "train_dlrm_simulated_cluster",
            "adaptive_error_bound",
            "autotune_error_bound",
        ],
    )
    def test_compiles(self, name):
        source = (EXAMPLES_DIR / f"{name}.py").read_text()
        compile(source, f"{name}.py", "exec")

    @pytest.mark.parametrize(
        "name",
        [
            "train_dlrm_simulated_cluster",
            "adaptive_error_bound",
            "autotune_error_bound",
        ],
    )
    def test_imports_resolve(self, name):
        """Loading the module executes its imports (but not main())."""
        module = _load_module(name)
        assert hasattr(module, "main")
