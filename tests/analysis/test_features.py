"""Tests for the data-feature analysis (Table I metrics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    analyze_table,
    code_entropy,
    gaussianity_score,
    lorenzo_entropy_inflation,
)
from tests.conftest import make_hot_batch


class TestCodeEntropy:
    def test_constant_is_zero(self):
        assert code_entropy(np.zeros(100, dtype=np.int64)) == 0.0

    def test_uniform_is_log2(self):
        codes = np.repeat(np.arange(8), 100)
        assert code_entropy(codes) == pytest.approx(3.0)

    def test_empty(self):
        assert code_entropy(np.array([], dtype=np.int64)) == 0.0

    def test_skew_lowers_entropy(self):
        skewed = np.array([0] * 90 + [1] * 10)
        balanced = np.array([0] * 50 + [1] * 50)
        assert code_entropy(skewed) < code_entropy(balanced)


class TestLorenzoInflation:
    def test_false_prediction_on_embedding_batches(self, rng):
        """Observation ❶: random-ordered embedding rows inflate entropy."""
        batch = make_hot_batch(rng, batch=256, dim=32, pool=12)
        assert lorenzo_entropy_inflation(batch, 0.01) > 1.0

    def test_prediction_helps_on_smooth_fields(self):
        x, y = np.meshgrid(np.linspace(0, 3, 64), np.linspace(0, 3, 64))
        smooth = (np.sin(x) + y).astype(np.float32)
        assert lorenzo_entropy_inflation(smooth, 1e-3) < 1.0

    def test_constant_batch_degenerate(self):
        batch = np.zeros((8, 8), dtype=np.float32)
        assert lorenzo_entropy_inflation(batch, 0.01) == 1.0


class TestGaussianity:
    def test_gaussian_scores_near_zero(self, rng):
        values = rng.normal(0, 1, size=20000)
        assert abs(gaussianity_score(values)) < 0.15

    def test_uniform_scores_negative(self, rng):
        values = rng.uniform(-1, 1, size=20000)
        assert gaussianity_score(values) == pytest.approx(-1.2, abs=0.1)

    def test_laplace_scores_positive(self, rng):
        values = rng.laplace(0, 1, size=20000)
        assert gaussianity_score(values) > 1.5

    def test_constant_defined(self):
        assert gaussianity_score(np.ones(10)) == 0.0

    def test_too_few_values_rejected(self):
        with pytest.raises(ValueError):
            gaussianity_score(np.ones(3))


class TestAnalyzeTable:
    def test_hot_batch_characteristics(self, rng):
        batch = make_hot_batch(rng, batch=256, dim=32, pool=10, unique_fraction=0.05)
        features = analyze_table(0, batch, 0.01)
        assert features.false_prediction  # Table I: ✓ for all shown tables
        assert features.table_id == 0

    def test_clustered_batch_flags_homogenization(self, rng):
        centroids = rng.normal(0, 0.3, size=(4, 16)).astype(np.float32)
        rows = centroids[rng.integers(0, 4, 128)] + rng.normal(0, 1e-4, (128, 16)).astype(np.float32)
        features = analyze_table(1, rows.astype(np.float32), 0.01)
        assert features.violent_homogenization

    def test_spread_batch_no_homogenization_flag(self, rng):
        batch = rng.uniform(-1, 1, size=(128, 16)).astype(np.float32)
        features = analyze_table(2, batch, 0.001)
        assert not features.violent_homogenization
        assert not features.gaussian_distribution

    def test_gaussian_flag(self, rng):
        batch = rng.normal(0, 0.1, size=(256, 32)).astype(np.float32)
        features = analyze_table(3, batch, 0.01)
        assert features.gaussian_distribution
