"""Tests for shared utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils import (
    GB,
    KB,
    MB,
    RngPool,
    check_dtype,
    check_in,
    check_positive,
    check_shape,
    format_bytes,
    format_rate,
    format_table,
    spawn_rng,
)


class TestRng:
    def test_same_seed_same_stream(self):
        a = spawn_rng(42, "x").random(5)
        b = spawn_rng(42, "x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        a = spawn_rng(42, "x").random(5)
        b = spawn_rng(42, "y").random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert spawn_rng(rng, "anything") is rng

    def test_pool_caches_by_name(self):
        pool = RngPool(7)
        assert pool.get("data") is pool.get("data")
        assert pool.get("data") is not pool.get("model")

    def test_pool_fork_independent(self):
        pool = RngPool(7)
        a = pool.fork("batch", 0).random(4)
        b = pool.fork("batch", 1).random(4)
        assert not np.array_equal(a, b)

    def test_pool_deterministic_across_instances(self):
        a = RngPool(9).get("s").random(3)
        b = RngPool(9).get("s").random(3)
        np.testing.assert_array_equal(a, b)

    def test_string_and_int_keys(self):
        a = spawn_rng(1, "t", 3).random(2)
        b = spawn_rng(1, "t", 3).random(2)
        np.testing.assert_array_equal(a, b)


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(512) == "512.00 B"
        assert format_bytes(2 * KB) == "2.00 KiB"
        assert format_bytes(3 * MB) == "3.00 MiB"
        assert format_bytes(1.5 * GB) == "1.50 GiB"

    def test_format_rate(self):
        assert format_rate(40.5 * GB) == "40.50 GiB/s"

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = out.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width
        assert "a" in lines[0] and "bb" in lines[0]

    def test_format_table_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_format_table_bools(self):
        out = format_table(["flag"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_format_table_ragged_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)
        check_positive("x", 0, strict=False)
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)

    def test_check_in(self):
        check_in("mode", "a", ("a", "b"))
        with pytest.raises(ValueError, match="mode"):
            check_in("mode", "c", ("a", "b"))

    def test_check_dtype(self):
        check_dtype("arr", np.zeros(2, np.float32), [np.float32, np.float64])
        with pytest.raises(TypeError):
            check_dtype("arr", np.zeros(2, np.int32), [np.float32])

    def test_check_shape(self):
        check_shape("arr", np.zeros((2, 3)), 2)
        with pytest.raises(ValueError):
            check_shape("arr", np.zeros(3), 2)
