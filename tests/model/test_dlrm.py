"""Tests for the DLRM model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticClickDataset, make_uniform_spec
from repro.model import DLRM, DLRMConfig
from repro.nn import bce_grad, bce_with_logits
from tests.nn.gradcheck import numerical_gradient, relative_error


@pytest.fixture
def tiny_config() -> DLRMConfig:
    return DLRMConfig(
        n_dense=3,
        table_cardinalities=(7, 5),
        embedding_dim=4,
        bottom_hidden=(6,),
        top_hidden=(5,),
        seed=1,
    )


@pytest.fixture
def tiny_batch(tiny_config):
    rng = np.random.default_rng(2)
    dense = rng.normal(size=(6, 3)).astype(np.float32)
    sparse = np.stack(
        [rng.integers(0, 7, size=6), rng.integers(0, 5, size=6)], axis=1
    )
    labels = (rng.random(6) < 0.5).astype(np.float32)
    return dense, sparse, labels


class TestConfig:
    def test_interaction_features(self, tiny_config):
        assert tiny_config.interaction_features == 3

    def test_from_dataset_carries_regimes(self):
        spec = make_uniform_spec("t", 3, 50, zipf_exponent=1.0)
        config = DLRMConfig.from_dataset(spec, embedding_dim=8)
        assert config.n_tables == 3
        assert config.table_value_scales == tuple(t.value_scale for t in spec.tables)
        assert config.table_value_distributions is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            DLRMConfig(n_dense=3, table_cardinalities=())
        with pytest.raises(ValueError):
            DLRMConfig(n_dense=3, table_cardinalities=(5,), table_value_scales=(0.1, 0.2))


class TestForward:
    def test_logit_shape(self, tiny_config, tiny_batch):
        model = DLRM(tiny_config)
        dense, sparse, _ = tiny_batch
        logits = model.forward(dense, sparse)
        assert logits.shape == (6,)

    def test_deterministic_given_seed(self, tiny_config, tiny_batch):
        dense, sparse, _ = tiny_batch
        a = DLRM(tiny_config).forward(dense, sparse)
        b = DLRM(tiny_config).forward(dense, sparse)
        np.testing.assert_array_equal(a, b)

    def test_staged_equals_monolithic(self, tiny_config, tiny_batch):
        """The stage-level API must compose to the same logits."""
        dense, sparse, _ = tiny_batch
        model = DLRM(tiny_config)
        whole = model.forward(dense, sparse)
        model2 = DLRM(tiny_config)
        bottom = model2.forward_dense(dense)
        rows = model2.lookup_all(sparse)
        staged = model2.forward_interaction(bottom, rows)
        np.testing.assert_allclose(whole, staged)

    def test_lookup_all_validation(self, tiny_config):
        model = DLRM(tiny_config)
        with pytest.raises(ValueError):
            model.lookup_all(np.zeros((4, 3), dtype=np.int64))

    def test_forward_interaction_count_validation(self, tiny_config, tiny_batch):
        dense, sparse, _ = tiny_batch
        model = DLRM(tiny_config)
        bottom = model.forward_dense(dense)
        with pytest.raises(ValueError):
            model.forward_interaction(bottom, [np.zeros((6, 4))])


class TestBackward:
    def test_full_gradcheck_mlp_weight(self, tiny_config, tiny_batch):
        dense, sparse, labels = tiny_batch
        model = DLRM(tiny_config)
        w = model.bottom_mlp.parameters()[0]

        def loss_of(wv):
            w.data = wv
            return bce_with_logits(model.forward(dense, sparse), labels)

        numeric = numerical_gradient(loss_of, w.data.copy())
        logits = model.forward(dense, sparse)
        for p in model.parameters():
            p.zero_grad()
        model.backward(bce_grad(logits, labels))
        assert relative_error(w.grad, numeric) < 1e-5

    def test_full_gradcheck_embedding(self, tiny_config, tiny_batch):
        dense, sparse, labels = tiny_batch
        model = DLRM(tiny_config)
        w = model.tables[0].weight

        def loss_of(wv):
            w.data = wv
            return bce_with_logits(model.forward(dense, sparse), labels)

        numeric = numerical_gradient(loss_of, w.data.copy())
        logits = model.forward(dense, sparse)
        for p in model.parameters():
            p.zero_grad()
        model.backward(bce_grad(logits, labels))
        # float32 lookups in the forward pass put a floor on the agreement
        # achievable by float64 central differences.
        assert relative_error(w.grad, numeric) < 1e-2

    def test_unused_rows_get_zero_grad(self, tiny_config, tiny_batch):
        dense, sparse, labels = tiny_batch
        model = DLRM(tiny_config)
        logits = model.forward(dense, sparse)
        for p in model.parameters():
            p.zero_grad()
        model.backward(bce_grad(logits, labels))
        used = set(sparse[:, 0].tolist())
        for row in range(tiny_config.table_cardinalities[0]):
            if row not in used:
                np.testing.assert_array_equal(model.tables[0].weight.grad[row], 0.0)

    def test_backward_interaction_before_forward_rejected(self, tiny_config):
        model = DLRM(tiny_config)
        with pytest.raises(RuntimeError):
            model.backward_interaction(np.zeros(4))


class TestParameterGroups:
    def test_partition_is_disjoint_and_complete(self, tiny_config):
        model = DLRM(tiny_config)
        mlp = set(id(p) for p in model.mlp_parameters())
        emb = set(id(p) for p in model.table_parameters())
        assert not mlp & emb
        assert mlp | emb == set(id(p) for p in model.parameters())

    def test_table_parameters_one_per_table(self, tiny_config):
        model = DLRM(tiny_config)
        assert len(model.table_parameters()) == tiny_config.n_tables


class TestTrainingSanity:
    def test_loss_decreases_on_synthetic_data(self):
        spec = make_uniform_spec("t", 3, 60, zipf_exponent=1.2)
        dataset = SyntheticClickDataset(spec, seed=5, teacher_scale=3.0)
        config = DLRMConfig.from_dataset(spec, embedding_dim=8, seed=6)
        model = DLRM(config)
        from repro.train import ReferenceTrainer

        trainer = ReferenceTrainer(model, dataset, lr=0.3)
        history = trainer.train(80, 64)
        early = np.mean(history.losses[:10])
        late = np.mean(history.losses[-10:])
        assert late < early - 0.02
