"""Tests for dataset specifications."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.specs import (
    CRITEO_KAGGLE,
    CRITEO_TERABYTE,
    DatasetSpec,
    TableSpec,
    make_uniform_spec,
    scaled_spec,
)


class TestCanonicalSpecs:
    def test_criteo_layout(self):
        for spec in (CRITEO_KAGGLE, CRITEO_TERABYTE):
            assert spec.n_tables == 26
            assert spec.n_dense == 13

    def test_kaggle_published_cardinalities(self):
        cards = CRITEO_KAGGLE.cardinalities()
        assert cards[0] == 1460
        assert cards.max() == 10131227
        assert cards.min() == 3

    def test_terabyte_larger_than_kaggle(self):
        assert CRITEO_TERABYTE.cardinalities().max() > CRITEO_KAGGLE.cardinalities().max()

    def test_size_spread_spans_orders_of_magnitude(self):
        """Fig. 6's property: sizes from single digits to millions."""
        cards = CRITEO_KAGGLE.cardinalities()
        assert cards.max() / cards.min() > 1e5

    def test_regime_mix_present(self):
        distributions = {t.value_distribution for t in CRITEO_KAGGLE.tables}
        assert {"laplace", "normal", "uniform"} <= distributions
        assert any(t.n_clusters > 0 for t in CRITEO_KAGGLE.tables)
        assert any(t.n_clusters == 0 for t in CRITEO_KAGGLE.tables)


class TestTableSpecValidation:
    def test_rejects_bad_cardinality(self):
        with pytest.raises(ValueError):
            TableSpec(table_id=0, cardinality=0)

    def test_rejects_negative_zipf(self):
        with pytest.raises(ValueError):
            TableSpec(table_id=0, cardinality=10, zipf_exponent=-1)

    def test_rejects_unknown_distribution(self):
        with pytest.raises(ValueError):
            TableSpec(table_id=0, cardinality=10, value_distribution="cauchy")

    def test_dataset_requires_consecutive_ids(self):
        with pytest.raises(ValueError, match="consecutive"):
            DatasetSpec(name="x", tables=(TableSpec(table_id=1, cardinality=5),))


class TestScaledSpec:
    def test_caps_cardinalities(self):
        scaled = scaled_spec(CRITEO_KAGGLE, max_cardinality=5000)
        assert scaled.cardinalities().max() <= 5000

    def test_small_tables_untouched(self):
        scaled = scaled_spec(CRITEO_KAGGLE, max_cardinality=5000)
        for orig, new in zip(CRITEO_KAGGLE.tables, scaled.tables):
            if orig.cardinality <= 5000:
                assert new.cardinality == orig.cardinality

    def test_preserves_relative_order_of_large_tables(self):
        """Strictly larger tables never become strictly smaller (ties from
        rounding are allowed)."""
        scaled = scaled_spec(CRITEO_KAGGLE, max_cardinality=5000)
        orig = CRITEO_KAGGLE.cardinalities()
        new = scaled.cardinalities()
        big = np.flatnonzero(orig > 5000)
        for i in big:
            for j in big:
                if orig[i] < orig[j]:
                    assert new[i] <= new[j]

    def test_noop_when_under_cap(self):
        spec = make_uniform_spec("s", 3, 100)
        assert scaled_spec(spec, max_cardinality=1000) is spec

    def test_keeps_regime_fields(self):
        scaled = scaled_spec(CRITEO_KAGGLE, max_cardinality=5000)
        for orig, new in zip(CRITEO_KAGGLE.tables, scaled.tables):
            assert new.zipf_exponent == orig.zipf_exponent
            assert new.value_distribution == orig.value_distribution

    def test_rejects_tiny_cap(self):
        with pytest.raises(ValueError):
            scaled_spec(CRITEO_KAGGLE, max_cardinality=1)


class TestUniformSpec:
    def test_shape(self):
        spec = make_uniform_spec("t", n_tables=4, cardinality=50, n_dense=7)
        assert spec.n_tables == 4
        assert spec.n_dense == 7
        assert all(t.cardinality == 50 for t in spec.tables)
