"""Tests for the synthetic click dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.specs import TableSpec, make_uniform_spec
from repro.data.synthetic import SyntheticClickDataset, zipf_probabilities


class TestZipfProbabilities:
    def test_sums_to_one(self):
        p = zipf_probabilities(100, 1.2)
        assert p.sum() == pytest.approx(1.0)

    def test_zero_exponent_is_uniform(self):
        p = zipf_probabilities(10, 0.0)
        np.testing.assert_allclose(p, 0.1)

    def test_monotone_decreasing(self):
        p = zipf_probabilities(50, 1.5)
        assert (np.diff(p) <= 0).all()

    def test_higher_exponent_more_concentrated(self):
        mild = zipf_probabilities(1000, 0.8)
        strong = zipf_probabilities(1000, 2.0)
        assert strong[:10].sum() > mild[:10].sum()

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, -0.5)


class TestSyntheticClickDataset:
    @pytest.fixture
    def dataset(self):
        spec = make_uniform_spec("t", n_tables=4, cardinality=500, zipf_exponent=1.5)
        return SyntheticClickDataset(spec, seed=7)

    def test_batch_shapes_and_dtypes(self, dataset):
        batch = dataset.batch(64)
        assert batch.dense.shape == (64, 13)
        assert batch.dense.dtype == np.float32
        assert batch.sparse.shape == (64, 4)
        assert batch.sparse.dtype == np.int64
        assert batch.labels.shape == (64,)
        assert set(np.unique(batch.labels)) <= {0.0, 1.0}

    def test_ids_in_range(self, dataset):
        batch = dataset.batch(256)
        assert batch.sparse.min() >= 0
        assert batch.sparse.max() < 500

    def test_deterministic_batches(self):
        spec = make_uniform_spec("t", n_tables=3, cardinality=100)
        a = SyntheticClickDataset(spec, seed=3).batch(32, batch_index=5)
        b = SyntheticClickDataset(spec, seed=3).batch(32, batch_index=5)
        np.testing.assert_array_equal(a.dense, b.dense)
        np.testing.assert_array_equal(a.sparse, b.sparse)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_batch_indices_differ(self, dataset):
        a = dataset.batch(32, batch_index=0)
        b = dataset.batch(32, batch_index=1)
        assert not np.array_equal(a.sparse, b.sparse)

    def test_different_seeds_differ(self):
        spec = make_uniform_spec("t", n_tables=2, cardinality=100)
        a = SyntheticClickDataset(spec, seed=1).batch(32)
        b = SyntheticClickDataset(spec, seed=2).batch(32)
        assert not np.array_equal(a.sparse, b.sparse)

    def test_zipf_skew_concentrates_queries(self):
        spec_hot = make_uniform_spec("hot", 1, 1000, zipf_exponent=2.0)
        spec_flat = make_uniform_spec("flat", 1, 1000, zipf_exponent=0.0)
        hot_counts = SyntheticClickDataset(spec_hot, seed=1).table_query_counts(0, 20000)
        flat_counts = SyntheticClickDataset(spec_flat, seed=1).table_query_counts(0, 20000)
        hot_top = np.sort(hot_counts)[::-1][:10].sum() / hot_counts.sum()
        flat_top = np.sort(flat_counts)[::-1][:10].sum() / flat_counts.sum()
        assert hot_top > 0.5 > flat_top

    def test_labels_correlate_with_teacher(self, dataset):
        """The planted signal must be learnable: a large batch's labels are
        not independent of the features (check via class balance spread
        across hot ids)."""
        batch = dataset.batch(4096)
        # Group labels by the id of table 0 and verify the click rate varies.
        ids = batch.sparse[:, 0]
        hot = np.bincount(ids).argmax()
        mask = ids == hot
        if 10 < mask.sum() < 4090:
            overall = batch.labels.mean()
            assert 0.02 < overall < 0.98

    def test_slice(self, dataset):
        batch = dataset.batch(64)
        part = batch.slice(16, 32)
        assert part.batch_size == 16
        np.testing.assert_array_equal(part.dense, batch.dense[16:32])

    def test_batches_iterator(self, dataset):
        batches = list(dataset.batches(16, 3))
        assert len(batches) == 3
        np.testing.assert_array_equal(batches[1].sparse, dataset.batch(16, 1).sparse)

    def test_rejects_bad_sizes(self, dataset):
        with pytest.raises(ValueError):
            dataset.batch(0)
        spec = make_uniform_spec("t", 1, 10)
        with pytest.raises(ValueError):
            SyntheticClickDataset(spec, n_samples=0)

    def test_rank_permutation_hides_ordering(self):
        """Hot ids should not all be small integers."""
        spec = make_uniform_spec("t", 1, 1000, zipf_exponent=2.0)
        ds = SyntheticClickDataset(spec, seed=11)
        counts = ds.table_query_counts(0, 20000)
        assert counts.argmax() > 10  # the hottest id is scattered by the permutation
