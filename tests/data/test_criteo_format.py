"""Tests for the Criteo TSV reader/writer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticClickDataset, make_uniform_spec
from repro.data.criteo_format import (
    CRITEO_DENSE_FIELDS,
    CRITEO_SPARSE_FIELDS,
    parse_criteo_line,
    read_criteo_batches,
    write_synthetic_criteo_tsv,
)
from repro.data.specs import CRITEO_KAGGLE, scaled_spec


def _make_line(label=1, dense=None, sparse=None) -> str:
    dense = dense if dense is not None else [str(i) for i in range(CRITEO_DENSE_FIELDS)]
    sparse = sparse if sparse is not None else [format(i, "08x") for i in range(CRITEO_SPARSE_FIELDS)]
    return "\t".join([str(label), *dense, *sparse])


class TestParseLine:
    def test_full_line(self):
        label, dense, sparse = parse_criteo_line(_make_line())
        assert label == 1
        np.testing.assert_array_equal(dense, np.arange(13, dtype=np.float64))
        np.testing.assert_array_equal(sparse, np.arange(26))

    def test_missing_fields(self):
        dense = [""] * CRITEO_DENSE_FIELDS
        sparse = [""] * CRITEO_SPARSE_FIELDS
        label, dense_out, sparse_out = parse_criteo_line(_make_line(0, dense, sparse))
        assert label == 0
        np.testing.assert_array_equal(dense_out, 0.0)
        np.testing.assert_array_equal(sparse_out, -1)

    def test_hex_parsing(self):
        sparse = ["deadbeef"] + [""] * (CRITEO_SPARSE_FIELDS - 1)
        _, _, sparse_out = parse_criteo_line(_make_line(1, None, sparse))
        assert sparse_out[0] == 0xDEADBEEF

    def test_malformed_field_count(self):
        with pytest.raises(ValueError, match="fields"):
            parse_criteo_line("1\t2\t3")

    def test_malformed_label(self):
        with pytest.raises(ValueError, match="label"):
            parse_criteo_line(_make_line(label=7))


class TestRoundTrip:
    @pytest.fixture
    def world(self, tmp_path):
        spec = scaled_spec(CRITEO_KAGGLE, max_cardinality=500)
        dataset = SyntheticClickDataset(spec, seed=3)
        path = tmp_path / "synthetic.tsv"
        n = write_synthetic_criteo_tsv(path, dataset, n_rows=300, batch_size=128)
        return spec, dataset, path, n

    def test_writer_row_count(self, world):
        _, _, path, n = world
        assert n == 300
        assert sum(1 for _ in open(path)) == 300

    def test_reader_batch_shapes(self, world):
        spec, _, path, _ = world
        batches = list(read_criteo_batches(path, 128, spec))
        assert [b.batch_size for b in batches] == [128, 128, 44]
        for batch in batches:
            assert batch.dense.shape[1] == 13
            assert batch.sparse.shape[1] == 26
            assert batch.dense.dtype == np.float32

    def test_sparse_ids_within_vocabulary(self, world):
        spec, _, path, _ = world
        for batch in read_criteo_batches(path, 100, spec):
            assert (batch.sparse >= 0).all()
            assert (batch.sparse < spec.cardinalities()[None, :]).all()

    def test_labels_preserved(self, world):
        spec, dataset, path, _ = world
        read_labels = np.concatenate(
            [b.labels for b in read_criteo_batches(path, 128, spec)]
        )
        # Replicate the writer's batching exactly (the tail batch is sized
        # 44, which seeds differently than a sliced 128-batch would).
        original = np.concatenate(
            [
                dataset.batch(128, batch_index=0).labels,
                dataset.batch(128, batch_index=1).labels,
                dataset.batch(44, batch_index=2).labels,
            ]
        )
        np.testing.assert_array_equal(read_labels, original)

    def test_dense_log_transform(self, world):
        spec, _, path, _ = world
        batch = next(read_criteo_batches(path, 50, spec))
        assert (batch.dense >= 0).all()  # log1p of non-negative ints

    def test_max_batches_limit(self, world):
        spec, _, path, _ = world
        batches = list(read_criteo_batches(path, 50, spec, max_batches=2))
        assert len(batches) == 2

    def test_missing_rate_handling(self, tmp_path):
        spec = scaled_spec(CRITEO_KAGGLE, max_cardinality=500)
        dataset = SyntheticClickDataset(spec, seed=4)
        path = tmp_path / "missing.tsv"
        write_synthetic_criteo_tsv(path, dataset, n_rows=100, missing_rate=0.3, seed=9)
        batches = list(read_criteo_batches(path, 100, spec))
        assert batches[0].batch_size == 100  # missing fields never drop rows

    def test_wrong_spec_rejected(self, tmp_path):
        small = make_uniform_spec("s", n_tables=3, cardinality=10)
        with pytest.raises(ValueError, match="13 dense and 26 sparse"):
            next(read_criteo_batches(tmp_path / "x.tsv", 10, small))

    def test_trained_model_consumes_file_batches(self, world):
        """The file path is a drop-in for the synthetic path."""
        from repro.model import DLRM, DLRMConfig
        from repro.nn import bce_with_logits

        spec, _, path, _ = world
        config = DLRMConfig.from_dataset(spec, embedding_dim=8, seed=5)
        model = DLRM(config)
        batch = next(read_criteo_batches(path, 64, spec))
        logits = model.forward(batch.dense, batch.sparse)
        assert np.isfinite(bce_with_logits(logits, batch.labels))
