"""Tests for the baseline compressors (FP16/FP8, LZ4/Deflate-like, cuSZ/FZ-GPU-like)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.baselines.cusz_like import (
    CuszLikeCompressor,
    inverse_lorenzo_2d,
    lorenzo_residuals_2d,
)
from repro.compression.baselines.fp import (
    Fp8Compressor,
    Fp16Compressor,
    e4m3_to_float32,
    e4m3_value_table,
    float32_to_e4m3,
)
from repro.compression.baselines.fzgpu_like import (
    FzGpuLikeCompressor,
    zigzag_decode,
    zigzag_encode,
)
from repro.compression.baselines.lz_generic import (
    DeflateLikeCompressor,
    Lz4LikeCompressor,
    lz77_decode_bytes,
    lz77_encode_bytes,
)
from tests.conftest import make_hot_batch


class TestE4M3:
    def test_table_known_values(self):
        table = e4m3_value_table()
        assert table[0] == 0.0  # +0
        assert table[0x38] == 1.0  # exp=7 bias -> 2^0, mantissa 0
        assert table[0x7E] == 448.0  # max finite
        assert np.isnan(table[0x7F])  # NaN code
        assert table[0xBE] == -1.75  # sign bit example: 0x3E = (1+6/8)*2^0 = 1.75

    def test_exactly_representable_roundtrip(self):
        values = np.array([0.0, 1.0, -1.0, 0.5, 448.0, -448.0, 0.0625], dtype=np.float32)
        codes = float32_to_e4m3(values)
        np.testing.assert_array_equal(e4m3_to_float32(codes), values)

    def test_saturation(self):
        codes = float32_to_e4m3(np.array([1e9, -1e9], dtype=np.float32))
        np.testing.assert_array_equal(e4m3_to_float32(codes), [448.0, -448.0])

    def test_rounds_to_nearest(self):
        # 1.0 and 1.125 are adjacent E4M3 values; 1.05 is nearer 1.0.
        out = e4m3_to_float32(float32_to_e4m3(np.array([1.05], dtype=np.float32)))
        assert out[0] == 1.0

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            float32_to_e4m3(np.array([np.nan], dtype=np.float32))

    @given(st.floats(min_value=-448, max_value=448, width=32))
    @settings(max_examples=200, deadline=None)
    def test_nearest_property(self, x):
        """Encoded value is the closest finite E4M3 value."""
        table = e4m3_value_table()
        finite = table[np.isfinite(table)]
        encoded = e4m3_to_float32(float32_to_e4m3(np.array([x], dtype=np.float32)))[0]
        best = float(np.min(np.abs(finite.astype(np.float64) - float(x))))
        assert abs(float(encoded) - float(x)) == pytest.approx(best, abs=1e-12)


class TestFpCompressors:
    def test_fp16_ratio_near_two(self, gaussian_batch):
        payload = Fp16Compressor().compress(gaussian_batch)
        assert gaussian_batch.nbytes / len(payload) == pytest.approx(2.0, rel=0.05)

    def test_fp8_ratio_near_four(self, gaussian_batch):
        payload = Fp8Compressor().compress(gaussian_batch)
        assert gaussian_batch.nbytes / len(payload) == pytest.approx(4.0, rel=0.05)

    def test_fp16_roundtrip_error_small(self, gaussian_batch):
        rec = Fp16Compressor().decompress(Fp16Compressor().compress(gaussian_batch))
        assert np.abs(gaussian_batch - rec).max() < 1e-3

    def test_fp8_roundtrip_error_relative(self, gaussian_batch):
        rec = Fp8Compressor().decompress(Fp8Compressor().compress(gaussian_batch))
        # E4M3 has ~6% max relative error for normal values.
        mask = np.abs(gaussian_batch) > 2**-6
        rel = np.abs((gaussian_batch - rec)[mask] / gaussian_batch[mask])
        assert rel.max() < 0.07


class TestLz77Bytes:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"abcabcabcabcabc",
            b"the quick brown fox " * 20,
            bytes(range(256)) * 4,
            b"\x00" * 1000,
        ],
    )
    def test_roundtrip(self, data):
        encoded = lz77_encode_bytes(data)
        assert lz77_decode_bytes(encoded, len(data)) == data

    def test_repetitive_data_compresses(self):
        data = b"embedding" * 500
        assert len(lz77_encode_bytes(data)) < len(data) / 10

    def test_random_data_expands_little(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=4096, dtype=np.uint8).tobytes()
        encoded = lz77_encode_bytes(data)
        assert len(encoded) < len(data) * 1.1

    def test_overlapping_match(self):
        """RLE-style overlap: offset smaller than match length."""
        data = b"ab" + b"ab" * 100
        encoded = lz77_encode_bytes(data)
        assert lz77_decode_bytes(encoded, len(data)) == data

    def test_window_limits_matches(self):
        """A repeat farther than the window back cannot be matched."""
        rng = np.random.default_rng(1)
        chunk = rng.integers(0, 256, size=256, dtype=np.uint8).tobytes()
        filler_a = rng.integers(0, 256, size=8192, dtype=np.uint8).tobytes()
        data = chunk + filler_a + chunk
        small = lz77_encode_bytes(data, window=4096)
        large = lz77_encode_bytes(data, window=65535)
        assert len(large) < len(small)

    def test_corrupt_offset_rejected(self):
        with pytest.raises(ValueError, match="corrupt"):
            # Token declaring a match at output position 0.
            lz77_decode_bytes(bytes([0x01, ord("x"), 9, 0]), 100)

    @given(st.binary(max_size=2000), st.integers(min_value=16, max_value=65535))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data, window):
        encoded = lz77_encode_bytes(data, window)
        assert lz77_decode_bytes(encoded, len(data)) == data


class TestLzCompressors:
    def test_lz4_like_lossless(self, hot_batch):
        codec = Lz4LikeCompressor()
        rec = codec.decompress(codec.compress(hot_batch))
        np.testing.assert_array_equal(rec, hot_batch)

    def test_deflate_like_lossless(self, hot_batch):
        codec = DeflateLikeCompressor()
        rec = codec.decompress(codec.compress(hot_batch))
        np.testing.assert_array_equal(rec, hot_batch)

    def test_deflate_not_worse_than_lz4(self, hot_batch):
        """Entropy stage should roughly match or beat plain LZ output size."""
        lz4 = len(Lz4LikeCompressor().compress(hot_batch))
        deflate = len(DeflateLikeCompressor().compress(hot_batch))
        assert deflate < lz4 * 1.2


class TestLorenzo:
    def test_residual_inverse(self):
        rng = np.random.default_rng(2)
        codes = rng.integers(-100, 100, size=(37, 19))
        np.testing.assert_array_equal(inverse_lorenzo_2d(lorenzo_residuals_2d(codes)), codes)

    def test_constant_field_residuals_sparse(self):
        codes = np.full((10, 10), 7, dtype=np.int64)
        residuals = lorenzo_residuals_2d(codes)
        assert residuals[0, 0] == 7
        assert np.count_nonzero(residuals) == 1

    def test_smooth_gradient_residuals_small(self):
        """On smooth scientific-like fields the predictor wins (by design)."""
        x = np.arange(50)[:, None] + np.arange(50)[None, :]
        residuals = lorenzo_residuals_2d(x)
        assert np.abs(residuals[1:, 1:]).max() == 0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            lorenzo_residuals_2d(np.arange(5))

    @given(st.integers(1, 30), st.integers(1, 30), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_inverse_property(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(-1000, 1000, size=(rows, cols))
        np.testing.assert_array_equal(inverse_lorenzo_2d(lorenzo_residuals_2d(codes)), codes)


class TestCuszLike:
    def test_roundtrip_within_bound(self, gaussian_batch):
        codec = CuszLikeCompressor()
        rec = codec.decompress(codec.compress(gaussian_batch, 0.01))
        assert np.abs(gaussian_batch - rec).max() <= 0.01 + 1e-6

    def test_false_prediction_on_embedding_batches(self, rng):
        """The paper's observation ❶: prediction hurts on repeated-row data."""
        from repro.compression.entropy import EntropyCompressor

        data = make_hot_batch(rng, batch=512, dim=32, pool=10, unique_fraction=0.05)
        cusz = len(CuszLikeCompressor().compress(data, 0.01))
        ours = len(EntropyCompressor().compress(data, 0.01))
        assert ours < cusz

    def test_prediction_helps_on_smooth_fields(self):
        """Sanity: on smooth data (its home turf) cuSZ-like beats raw entropy."""
        from repro.compression.entropy import EntropyCompressor

        x, y = np.meshgrid(np.linspace(0, 4, 64), np.linspace(0, 4, 64))
        smooth = np.sin(x) * np.cos(y) + x * 0.2
        smooth = smooth.astype(np.float32)
        cusz = len(CuszLikeCompressor().compress(smooth, 1e-4))
        ours = len(EntropyCompressor().compress(smooth, 1e-4))
        assert cusz < ours


class TestZigzag:
    @given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        np.testing.assert_array_equal(zigzag_decode(zigzag_encode(arr)), arr)

    def test_small_magnitudes_stay_small(self):
        np.testing.assert_array_equal(zigzag_encode(np.array([0, -1, 1, -2, 2])), [0, 1, 2, 3, 4])


class TestFzGpuLike:
    def test_roundtrip_within_bound(self, gaussian_batch):
        codec = FzGpuLikeCompressor()
        rec = codec.decompress(codec.compress(gaussian_batch, 0.01))
        assert np.abs(gaussian_batch - rec).max() <= 0.01 + 1e-6

    def test_concentrated_data_compresses(self, gaussian_batch):
        payload = FzGpuLikeCompressor().compress(gaussian_batch, 0.01)
        assert gaussian_batch.nbytes / len(payload) > 2.0

    def test_rejects_overflowing_codes(self):
        data = np.array([[1e6]], dtype=np.float32)
        with pytest.raises(ValueError, match="16-bit"):
            FzGpuLikeCompressor().compress(data, 1e-4)

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            FzGpuLikeCompressor(block_bytes=0)

    def test_roundtrip_various_sizes(self, rng):
        codec = FzGpuLikeCompressor(block_bytes=32)
        for shape in [(1, 1), (3, 7), (128, 32), (77, 13)]:
            data = rng.normal(0, 0.1, size=shape).astype(np.float32)
            rec = codec.decompress(codec.compress(data, 0.005))
            assert np.abs(data - rec).max() <= 0.005 + 1e-6
