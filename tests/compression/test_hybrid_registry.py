"""Tests for the hybrid compressor, registry, and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import (
    CuszLikeCompressor,
    EntropyCompressor,
    HybridCompressor,
    VectorLZCompressor,
    available_compressors,
    communication_speedup,
    compression_ratio,
    decompress_any,
    evaluate_codec,
    get_compressor,
    max_abs_error,
    register_compressor,
    verify_error_bound,
)
from repro.compression.base import parse_payload
from tests.conftest import make_gaussian_batch, make_hot_batch


class TestHybrid:
    def test_auto_picks_smaller(self, rng):
        hybrid = HybridCompressor()
        lz = VectorLZCompressor()
        entropy = EntropyCompressor()
        for batch in (
            make_hot_batch(rng, pool=8, unique_fraction=0.02),
            make_gaussian_batch(rng),
        ):
            payload = hybrid.compress(batch, 0.01)
            assert len(payload) == min(
                len(lz.compress(batch, 0.01)), len(entropy.compress(batch, 0.01))
            )

    def test_auto_never_worse_than_either(self, rng):
        """Table V: hybrid column equals max ratio of the two legs."""
        hybrid = HybridCompressor()
        for batch in (make_hot_batch(rng), make_gaussian_batch(rng)):
            h = len(hybrid.compress(batch, 0.02))
            lz = len(VectorLZCompressor().compress(batch, 0.02))
            en = len(EntropyCompressor().compress(batch, 0.02))
            assert h <= lz and h <= en

    def test_pinned_encoder_lz(self, hot_batch):
        payload = HybridCompressor(encoder="lz").compress(hot_batch, 0.01)
        header, _ = parse_payload(payload)
        assert header["codec"] == "vector_lz"

    def test_pinned_encoder_huffman(self, gaussian_batch):
        payload = HybridCompressor(encoder="huffman").compress(gaussian_batch, 0.01)
        header, _ = parse_payload(payload)
        assert header["codec"] == "entropy"

    def test_decompress_either_leg(self, hot_batch, gaussian_batch):
        hybrid = HybridCompressor()
        for batch in (hot_batch, gaussian_batch):
            payload = hybrid.compress(batch, 0.01)
            rec = hybrid.decompress(payload)
            assert np.abs(batch - rec).max() <= 0.01 + 1e-6

    def test_invalid_encoder_rejected(self):
        with pytest.raises(ValueError, match="encoder"):
            HybridCompressor(encoder="zstd")

    def test_requires_error_bound(self, hot_batch):
        with pytest.raises(ValueError, match="error_bound"):
            HybridCompressor().compress(hot_batch)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError, match="2-D"):
            HybridCompressor().compress(np.zeros(8, dtype=np.float32), 0.01)

    def test_error_bound_respected_across_bounds(self, uniform_batch):
        hybrid = HybridCompressor()
        for eb in (0.001, 0.02, 0.3):
            rec = hybrid.decompress(hybrid.compress(uniform_batch, eb))
            assert verify_error_bound(uniform_batch, rec, eb)

    def test_larger_bound_smaller_payload(self, uniform_batch):
        hybrid = HybridCompressor()
        sizes = [len(hybrid.compress(uniform_batch, eb)) for eb in (0.001, 0.01, 0.1)]
        assert sizes == sorted(sizes, reverse=True)


class TestRegistry:
    def test_all_names_constructible(self):
        for name in available_compressors():
            codec = get_compressor(name)
            assert codec.name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown compressor"):
            get_compressor("zstd")

    def test_decompress_any_routes(self, gaussian_batch):
        for name in available_compressors():
            codec = get_compressor(name)
            payload = codec.compress(gaussian_batch, 0.01)
            rec = decompress_any(payload)
            assert rec.shape == gaussian_batch.shape

    def test_register_collision(self):
        with pytest.raises(ValueError, match="already registered"):
            register_compressor("hybrid", HybridCompressor)

    def test_kwargs_forwarded(self):
        codec = get_compressor("vector_lz", window=64)
        assert codec.window == 64

    def test_wrong_codec_decompress_rejected(self, gaussian_batch):
        payload = get_compressor("fp16").compress(gaussian_batch)
        with pytest.raises(ValueError, match="produced by codec"):
            CuszLikeCompressor().decompress(payload)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            decompress_any(b"\x00\x01\x02")


class TestMetrics:
    def test_compression_ratio(self):
        assert compression_ratio(100, 25) == 4.0

    def test_ratio_rejects_zero(self):
        with pytest.raises(ValueError):
            compression_ratio(0, 10)

    def test_eq2_matches_hand_computation(self):
        # CR=10, B=4 GB/s, Tc=40 GB/s, Td=200 GB/s
        # denom = 0.1 + 4/40 + 4/200 = 0.1 + 0.1 + 0.02 = 0.22
        assert communication_speedup(10, 4e9, 40e9, 200e9) == pytest.approx(1 / 0.22)

    def test_eq2_infinite_throughput_limit(self):
        """With free compression the speedup approaches CR."""
        assert communication_speedup(8, 4e9, 1e18, 1e18) == pytest.approx(8.0, rel=1e-6)

    def test_eq2_slow_compressor_penalized(self):
        fast = communication_speedup(10, 4e9, 100e9, 100e9)
        slow = communication_speedup(10, 4e9, 5e9, 5e9)
        assert slow < 1.0 < fast

    def test_eq2_monotone_in_ratio(self):
        speedups = [communication_speedup(cr, 4e9, 40e9, 40e9) for cr in (2, 4, 8, 16)]
        assert speedups == sorted(speedups)

    def test_max_abs_error_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            max_abs_error(np.zeros(3), np.zeros(4))

    def test_evaluate_codec_fields(self, gaussian_batch):
        ev = evaluate_codec(get_compressor("entropy"), gaussian_batch, 0.01)
        assert ev.codec == "entropy"
        assert ev.ratio > 1.0
        assert 0 < ev.max_error <= 0.01 + 1e-6
        assert ev.compress_throughput > 0
        assert ev.decompress_throughput > 0
        assert ev.original_nbytes == gaussian_batch.nbytes
