"""Tests for the exchange autotuner: monotone decisions from measured balance.

The tuner's promises are structural: more wire-bound never yields fewer
pipeline chunks, more compute-bound never yields fewer codec workers, and
decisions stay inside the configured bounds.  Hypothesis checks the
monotonicity over randomized stage times.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.parallel import ExchangeAutotuner
from repro.obs.registry import MetricsRegistry

seconds = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)


def _tuned(compress, wire, decompress=0.0, **kwargs):
    tuner = ExchangeAutotuner(**kwargs)
    tuner.observe(compress, wire, decompress)
    return tuner.recommend()


class TestConstruction:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ExchangeAutotuner(min_chunks=8, max_chunks=4)
        with pytest.raises(ValueError):
            ExchangeAutotuner(default_chunks=64, max_chunks=32)
        with pytest.raises(ValueError):
            ExchangeAutotuner(worker_ladder=(4, 2, 1))
        with pytest.raises(ValueError):
            ExchangeAutotuner(worker_ladder=())
        with pytest.raises(ValueError):
            ExchangeAutotuner(smoothing=0.0)

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            ExchangeAutotuner().observe(-1.0, 0.5)


class TestDecisions:
    def test_defaults_before_first_observation(self):
        decision = ExchangeAutotuner(default_chunks=8).recommend()
        assert decision.pipeline_chunks == 8
        assert decision.workers == 1
        assert decision.observations == 0

    def test_wire_bound_gets_finest_pipeline_and_no_workers(self):
        decision = _tuned(compress=0.001, wire=1.0, max_chunks=32)
        assert decision.pipeline_chunks == 32
        assert decision.workers == 1  # compression already hides behind wire

    def test_compute_bound_gets_coarse_pipeline_and_top_rung(self):
        decision = _tuned(compress=1.0, wire=0.001, min_chunks=1, worker_ladder=(1, 2, 4))
        assert decision.pipeline_chunks == 1
        assert decision.workers == 4  # even 4 workers cannot hide it; best effort

    def test_balanced_exchange_picks_a_middle_rung(self):
        # C=1, W=0.6: 1/2 <= 0.6 so 2 workers hide compression; 1 does not.
        decision = _tuned(compress=1.0, wire=0.6, worker_ladder=(1, 2, 4))
        assert decision.workers == 2

    def test_decompress_counts_toward_codec_time(self):
        with_decode = _tuned(compress=0.5, wire=0.6, decompress=0.7, worker_ladder=(1, 2, 4))
        without = _tuned(compress=0.5, wire=0.6, worker_ladder=(1, 2, 4))
        assert with_decode.workers >= without.workers

    @given(seconds, seconds, seconds, seconds)
    @settings(max_examples=200, deadline=None)
    def test_chunks_monotone_in_wire_fraction(self, c1, w1, c2, w2):
        """More wire-bound ⇒ never fewer chunks (the ISSUE's pinned law)."""
        d1 = _tuned(c1, w1)
        d2 = _tuned(c2, w2)
        if d1.wire_fraction <= d2.wire_fraction:
            assert d1.pipeline_chunks <= d2.pipeline_chunks
        else:
            assert d1.pipeline_chunks >= d2.pipeline_chunks

    @given(seconds, st.floats(min_value=1e-3, max_value=100.0), seconds)
    @settings(max_examples=200, deadline=None)
    def test_workers_monotone_in_codec_load(self, c, w, d):
        """Scaling codec time up (same wire) never decreases the rung."""
        low = _tuned(c, w, d)
        high = _tuned(2.0 * c + 1e-3, w, 2.0 * d)
        assert high.workers >= low.workers

    @given(st.lists(st.tuples(seconds, seconds), min_size=1, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_decision_always_in_bounds(self, observations):
        tuner = ExchangeAutotuner(min_chunks=2, max_chunks=24, default_chunks=4)
        for compress, wire in observations:
            tuner.observe(compress, wire)
        decision = tuner.recommend()
        assert 2 <= decision.pipeline_chunks <= 24
        assert decision.workers in tuner.worker_ladder
        assert 0.0 <= decision.wire_fraction <= 1.0
        assert decision.observations == len(observations)


class TestSmoothing:
    def test_first_observation_lands_whole(self):
        tuner = ExchangeAutotuner(smoothing=0.5)
        tuner.observe(1.0, 3.0)
        assert tuner.wire_fraction == pytest.approx(0.75)

    def test_straggler_is_damped(self):
        tuner = ExchangeAutotuner(smoothing=0.5)
        for _ in range(4):
            tuner.observe(1.0, 1.0)
        steady = tuner.wire_fraction
        tuner.observe(1.0, 100.0)  # one pathological wire stall
        assert tuner.wire_fraction < 1.0
        assert tuner.wire_fraction > steady  # moved, but not whipped


class TestRegistryFeed:
    def test_observe_registry_diffs_stage_counters(self):
        reg = MetricsRegistry()
        counter = reg.counter("comm_seconds_total", "per-stage exchange seconds")
        counter.inc(2.0, stage="compress")
        counter.inc(1.0, stage="metadata")
        counter.inc(3.0, stage="payload")
        counter.inc(0.5, stage="decompress")
        tuner = ExchangeAutotuner()
        assert tuner.observe_registry(reg)
        assert tuner.observations == 1
        assert tuner.wire_fraction == pytest.approx(4.0 / 6.0)
        # No new counter movement: nothing to observe.
        assert not tuner.observe_registry(reg)
        assert tuner.observations == 1
        # Only the *delta* since the mark feeds the second observation.
        counter.inc(10.0, stage="compress")
        assert tuner.observe_registry(reg)
        assert tuner.observations == 2
