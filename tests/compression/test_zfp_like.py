"""Tests for the ZFP-like fixed-rate transform codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.baselines.zfp_like import (
    ZfpLikeCompressor,
    block_transform,
    inverse_block_transform,
)


class TestBlockTransform:
    def test_constant_block_concentrates_energy(self):
        block = np.full((1, 4), 5, dtype=np.int64)
        coeffs = block_transform(block)
        assert coeffs[0, 0] == 20
        np.testing.assert_array_equal(coeffs[0, 1:], 0)

    def test_inverse_exact_on_untruncated(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(-1000, 1000, size=(50, 4))
        coeffs = block_transform(blocks)
        restored = inverse_block_transform(coeffs)
        np.testing.assert_allclose(restored, blocks)

    def test_linearity(self):
        rng = np.random.default_rng(1)
        a = rng.integers(-10, 10, size=(5, 4))
        b = rng.integers(-10, 10, size=(5, 4))
        np.testing.assert_array_equal(
            block_transform(a + b), block_transform(a) + block_transform(b)
        )


class TestZfpLike:
    def test_error_decreases_with_rate(self, gaussian_batch):
        errors = []
        for rate in (4, 8, 12, 16):
            codec = ZfpLikeCompressor(rate=rate)
            rec = codec.decompress(codec.compress(gaussian_batch))
            errors.append(np.abs(gaussian_batch - rec).max())
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < errors[0] / 100

    def test_ratio_tracks_rate(self, gaussian_batch):
        for rate in (4, 8, 16):
            codec = ZfpLikeCompressor(rate=rate)
            payload = codec.compress(gaussian_batch)
            ratio = gaussian_batch.nbytes / len(payload)
            # 32/rate minus per-block header overhead (2 bytes per 16-byte
            # block: exponent + shift), which bites hardest at low rates.
            assert 0.45 * 32 / rate < ratio <= 32 / rate

    def test_fixed_rate_independent_of_content(self, rng):
        """The defining fixed-rate property: payload size does not depend on
        the data (unlike the error-bounded codecs)."""
        codec = ZfpLikeCompressor(rate=8)
        smooth = np.zeros((64, 32), dtype=np.float32)
        noisy = rng.uniform(-10, 10, size=(64, 32)).astype(np.float32)
        assert len(codec.compress(smooth)) == len(codec.compress(noisy))

    def test_relative_error_bounded_by_rate(self, rng):
        """Per-block relative error shrinks ~2x per extra bit."""
        data = rng.normal(0, 1.0, size=(128, 32)).astype(np.float32)
        codec = ZfpLikeCompressor(rate=12)
        rec = codec.decompress(codec.compress(data))
        rel = np.abs(data - rec).max() / np.abs(data).max()
        assert rel < 2.0 ** -(12 - 4)  # sign bit + transform growth margin

    def test_non_multiple_of_block_sizes(self, rng):
        codec = ZfpLikeCompressor(rate=10)
        for shape in [(1, 1), (3, 5), (7, 13), (2, 31)]:
            data = rng.normal(0, 0.1, size=shape).astype(np.float32)
            rec = codec.decompress(codec.compress(data))
            assert rec.shape == shape
            assert np.abs(data - rec).max() < 0.01

    def test_zero_input_exact(self):
        codec = ZfpLikeCompressor(rate=4)
        data = np.zeros((8, 8), dtype=np.float32)
        np.testing.assert_array_equal(codec.decompress(codec.compress(data)), data)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            ZfpLikeCompressor().compress(np.array([[np.nan, 0, 0, 0]], dtype=np.float32))

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ZfpLikeCompressor(rate=1)
        with pytest.raises(ValueError):
            ZfpLikeCompressor(rate=29)

    def test_registered(self):
        from repro.compression import decompress_any, get_compressor

        codec = get_compressor("zfp_like", rate=8)
        data = np.random.default_rng(3).normal(0, 0.1, (16, 16)).astype(np.float32)
        rec = decompress_any(codec.compress(data))
        assert rec.shape == data.shape

    @given(
        st.integers(min_value=2, max_value=28),
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_shape_and_sanity(self, rate, n, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 0.5, size=(n, 3)).astype(np.float32)
        codec = ZfpLikeCompressor(rate=rate)
        rec = codec.decompress(codec.compress(data))
        assert rec.shape == data.shape
        assert np.isfinite(rec).all()
        # Reconstruction error bounded by block magnitude at worst.
        scale = max(float(np.abs(data).max()), 1e-6)
        assert np.abs(data - rec).max() <= scale * 2.0 ** max(4 - rate, -20) * 16 + 1e-6
