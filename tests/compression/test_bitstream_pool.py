"""Property tests for the zero-copy bitstream pool.

The pool's contract is a pair of laws the rest of the raw-speed tier
builds on: two live leases never alias (every checkout owns a distinct
arena), and a released arena is deterministically reused by the next
same-bucket checkout — steady-state rounds hit the free list, never the
allocator.  Hypothesis drives both over randomized checkout/release
schedules.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.parallel.pool import (
    _MIN_ARENA,
    BitstreamPool,
    arena_capacity,
)


class TestArenaCapacity:
    def test_minimum_bucket(self):
        assert arena_capacity(0) == _MIN_ARENA
        assert arena_capacity(1) == _MIN_ARENA
        assert arena_capacity(_MIN_ARENA) == _MIN_ARENA

    @given(st.integers(min_value=1, max_value=1 << 24))
    @settings(max_examples=200, deadline=None)
    def test_power_of_two_and_fits(self, nbytes):
        cap = arena_capacity(nbytes)
        assert cap >= nbytes
        assert cap & (cap - 1) == 0  # power of two
        assert cap < 2 * max(nbytes, _MIN_ARENA)  # never over-doubles


class TestLease:
    def test_view_is_exact_size_and_writable(self):
        pool = BitstreamPool()
        lease = pool.checkout(37)
        assert len(lease) == 37
        assert lease.view.nbytes == 37
        lease.view[:] = b"\xab" * 37
        assert bytes(lease.view) == b"\xab" * 37
        lease.release()

    def test_write_and_array_share_the_window(self):
        pool = BitstreamPool()
        lease = pool.checkout(16)
        lease.write(b"\x01\x02\x03\x04" * 4)
        arr = lease.array(np.uint8)
        assert arr.tolist()[:4] == [1, 2, 3, 4]
        arr[0] = 99
        assert lease.view[0] == 99
        del arr
        lease.release()

    def test_write_overflow_rejected(self):
        pool = BitstreamPool()
        with pool.checkout(4) as lease:
            with pytest.raises(ValueError, match="lease too small"):
                lease.write(b"\x00" * 5)

    def test_release_is_idempotent(self):
        pool = BitstreamPool()
        lease = pool.checkout(8)
        lease.release()
        lease.release()
        assert pool.stats.live == 0
        assert pool.free_arenas() == 1

    def test_use_after_release_raises(self):
        pool = BitstreamPool()
        lease = pool.checkout(8)
        lease.release()
        with pytest.raises(ValueError):
            lease.view[0] = 1

    def test_context_manager_releases(self):
        pool = BitstreamPool()
        with pool.checkout(8) as lease:
            assert not lease.released
        assert lease.released
        assert pool.stats.live == 0

    def test_dirty_release_drops_the_arena(self):
        """An arena with a live buffer export is never recycled — the
        surviving array stays valid and no future checkout can write
        under it."""
        pool = BitstreamPool()
        lease = pool.checkout(8)
        arr = lease.array(np.uint8)  # holds a buffer export
        arr[:] = 42
        lease.release()
        assert pool.stats.dirty_releases == 1
        assert pool.stats.live == 0
        assert pool.free_arenas() == 0  # dropped, not pooled
        with pool.checkout(8) as other:
            other.view[:] = b"\x00" * 8
            assert arr.tolist() == [42] * 8  # untouched

    def test_checkout_bytes_prefills(self):
        pool = BitstreamPool()
        lease = pool.checkout_bytes(b"hello world")
        assert bytes(lease.view) == b"hello world"
        lease.release()

    def test_checkout_array_shape_and_dtype(self):
        pool = BitstreamPool()
        lease, arr = pool.checkout_array((3, 4), np.float32)
        assert arr.shape == (3, 4) and arr.dtype == np.float32
        arr[:] = 7.0
        assert np.frombuffer(lease.view, dtype=np.float32).sum() == pytest.approx(84.0)
        del arr
        lease.release()


class TestPoolLaws:
    @given(st.lists(st.integers(min_value=1, max_value=4096), min_size=2, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_live_leases_never_alias(self, sizes):
        """Writing a distinct pattern through every live lease corrupts
        none of the others — each checkout owns a private arena."""
        pool = BitstreamPool()
        leases = [pool.checkout(n) for n in sizes]
        for i, lease in enumerate(leases):
            lease.view[:] = bytes([i % 251]) * lease.nbytes
        for i, lease in enumerate(leases):
            assert bytes(lease.view) == bytes([i % 251]) * lease.nbytes
        for lease in leases:
            lease.release()
        assert pool.stats.live == 0

    @given(st.integers(min_value=1, max_value=1 << 16))
    @settings(max_examples=100, deadline=None)
    def test_released_arena_is_reused(self, nbytes):
        """checkout → release → checkout of the same bucket hits the free
        list: no new arena, one more reuse."""
        pool = BitstreamPool()
        pool.checkout(nbytes).release()
        created = pool.stats.arenas_created
        lease = pool.checkout(nbytes)
        assert pool.stats.arenas_created == created
        assert pool.stats.reuses == 1
        lease.release()

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=1, max_value=2048)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_randomized_schedule_invariants(self, ops):
        """Any interleaving of checkouts and releases keeps the accounting
        consistent and never aliases a live lease."""
        pool = BitstreamPool(max_arenas_per_bucket=4)
        live: list = []
        for release_one, nbytes in ops:
            if release_one and live:
                idx = nbytes % len(live)
                lease, pattern = live.pop(idx)
                assert bytes(lease.view) == pattern  # untouched while live
                lease.release()
            else:
                lease = pool.checkout(nbytes)
                pattern = bytes([nbytes % 256]) * nbytes
                lease.view[:] = pattern
                live.append((lease, pattern))
        assert pool.stats.live == len(live)
        assert pool.stats.checkouts == pool.stats.arenas_created + pool.stats.reuses
        for lease, pattern in live:
            assert bytes(lease.view) == pattern
            lease.release()
        assert pool.stats.live == 0

    def test_retention_is_bounded(self):
        pool = BitstreamPool(max_arenas_per_bucket=2)
        leases = [pool.checkout(100) for _ in range(5)]
        for lease in leases:
            lease.release()
        assert pool.free_arenas() == 2  # the rest went to the GC

    def test_clear_drops_free_arenas(self):
        pool = BitstreamPool()
        pool.checkout(100).release()
        assert pool.free_arenas() == 1
        pool.clear()
        assert pool.free_arenas() == 0
        # a live lease survives clear()
        lease = pool.checkout(50)
        pool.clear()
        lease.view[:] = b"\x01" * 50
        lease.release()

    def test_negative_checkout_rejected(self):
        with pytest.raises(ValueError):
            BitstreamPool().checkout(-1)

    def test_zero_byte_checkout(self):
        pool = BitstreamPool()
        with pool.checkout(0) as lease:
            assert lease.view.nbytes == 0
