"""Tests for the compact header serializer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.serialization import (
    pack_meta,
    read_varint,
    unpack_meta,
    write_varint,
)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 255, 300, 2**20, 2**63])
    def test_roundtrip(self, value):
        out = bytearray()
        write_varint(out, value)
        decoded, pos = read_varint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            write_varint(bytearray(), -1)

    def test_truncated_stream(self):
        out = bytearray()
        write_varint(out, 2**20)
        with pytest.raises(ValueError, match="truncated"):
            read_varint(bytes(out[:-1]), 0)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip_property(self, value):
        out = bytearray()
        write_varint(out, value)
        decoded, _ = read_varint(bytes(out), 0)
        assert decoded == value

    def test_small_values_take_one_byte(self):
        out = bytearray()
        write_varint(out, 100)
        assert len(out) == 1


class TestPackMeta:
    def test_roundtrip_all_types(self):
        meta = {
            "int": 42,
            "neg": -17,
            "float": 3.25,
            "str": "vector_lz",
            "bytes": b"\x00\xff\x01",
            "arr": np.arange(12, dtype=np.int64).reshape(3, 4),
        }
        packed = pack_meta(meta)
        decoded, pos = unpack_meta(packed)
        assert pos == len(packed)
        assert decoded["int"] == 42
        assert decoded["neg"] == -17
        assert decoded["float"] == 3.25
        assert decoded["str"] == "vector_lz"
        assert decoded["bytes"] == b"\x00\xff\x01"
        np.testing.assert_array_equal(decoded["arr"], meta["arr"])
        assert decoded["arr"].dtype == np.int64

    def test_empty_meta(self):
        decoded, pos = unpack_meta(pack_meta({}))
        assert decoded == {}
        assert pos == 1  # single varint 0

    def test_preserves_key_order(self):
        meta = {"z": 1, "a": 2, "m": 3}
        decoded, _ = unpack_meta(pack_meta(meta))
        assert list(decoded) == ["z", "a", "m"]

    def test_array_dtype_preserved(self):
        for dtype in (np.uint8, np.int32, np.float32, np.float64, np.uint64):
            meta = {"a": np.array([1, 2, 3], dtype=dtype)}
            decoded, _ = unpack_meta(pack_meta(meta))
            assert decoded["a"].dtype == dtype

    def test_empty_array(self):
        decoded, _ = unpack_meta(pack_meta({"a": np.zeros((0, 3), dtype=np.float32)}))
        assert decoded["a"].shape == (0, 3)

    def test_bool_rejected(self):
        with pytest.raises(TypeError, match="bool"):
            pack_meta({"flag": True})

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            pack_meta({"x": object()})

    def test_unknown_tag_rejected(self):
        packed = bytearray(pack_meta({"k": 1}))
        # Corrupt the value tag ('I') into an unknown letter.
        packed[packed.index(ord("I"))] = ord("Q")
        with pytest.raises(ValueError, match="unknown meta tag"):
            unpack_meta(bytes(packed))

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(
                st.integers(min_value=-(2**62), max_value=2**62),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=16),
                st.binary(max_size=16),
            ),
            max_size=6,
        )
    )
    def test_roundtrip_property(self, meta):
        decoded, pos = unpack_meta(pack_meta(meta))
        packed = pack_meta(meta)
        assert pos == len(packed)
        assert decoded == meta

    def test_sequential_headers(self):
        """Two headers packed back-to-back parse at returned offsets."""
        first = pack_meta({"a": 1})
        second = pack_meta({"b": "x"})
        blob = first + second
        meta1, pos = unpack_meta(blob)
        meta2, end = unpack_meta(blob, pos)
        assert meta1 == {"a": 1}
        assert meta2 == {"b": "x"}
        assert end == len(blob)


class TestChecksumFrame:
    """The opt-in CRC32 envelope (satellite of the fault-injection PR)."""

    def test_roundtrip(self):
        from repro.compression.serialization import (
            CHECKSUM_MAGIC,
            frame_with_checksum,
            has_checksum,
            verify_checksum_frame,
        )

        body = b"compressed delta payload"
        framed = frame_with_checksum(body)
        assert framed[0] == CHECKSUM_MAGIC
        assert len(framed) == len(body) + 5
        assert has_checksum(framed) and not has_checksum(body)
        assert verify_checksum_frame(framed) == body

    def test_empty_body_roundtrips(self):
        from repro.compression.serialization import frame_with_checksum, verify_checksum_frame

        assert verify_checksum_frame(frame_with_checksum(b"")) == b""

    @pytest.mark.parametrize("position", [5, 10, 23])
    def test_bit_flip_detected(self, position):
        from repro.compression.serialization import (
            CorruptPayloadError,
            frame_with_checksum,
            verify_checksum_frame,
        )

        framed = bytearray(frame_with_checksum(bytes(range(32))))
        framed[position] ^= 0x40
        with pytest.raises(CorruptPayloadError, match="CRC32"):
            verify_checksum_frame(bytes(framed))

    def test_damaged_digest_detected(self):
        from repro.compression.serialization import (
            CorruptPayloadError,
            frame_with_checksum,
            verify_checksum_frame,
        )

        framed = bytearray(frame_with_checksum(b"payload"))
        framed[2] ^= 0x01  # inside the stored digest
        with pytest.raises(CorruptPayloadError):
            verify_checksum_frame(bytes(framed))

    def test_unframed_payload_rejected_as_value_error(self):
        from repro.compression.serialization import CorruptPayloadError, verify_checksum_frame

        with pytest.raises(ValueError) as err:
            verify_checksum_frame(b"no envelope here")
        assert not isinstance(err.value, CorruptPayloadError)

    @given(st.binary(max_size=256))
    def test_roundtrip_property(self, body):
        from repro.compression.serialization import frame_with_checksum, verify_checksum_frame

        assert verify_checksum_frame(frame_with_checksum(body)) == body

    def test_decompress_any_strips_envelope(self):
        """The registry-level decoder verifies and unwraps transparently,
        so receivers need no knowledge of whether framing was enabled."""
        import numpy as np

        from repro.compression import HybridCompressor, decompress_any
        from repro.compression.serialization import frame_with_checksum

        data = np.linspace(-1.0, 1.0, 512, dtype=np.float32).reshape(64, 8)
        payload = HybridCompressor().compress(data, 1e-2)
        plain = decompress_any(payload)
        framed = decompress_any(frame_with_checksum(payload))
        assert np.array_equal(plain, framed)


class TestZeroCopyFraming:
    """Differential: zero-copy framing vs the frozen ``_reference_*`` seed
    implementations (the raw-speed PR's byte-compatibility contract)."""

    @given(st.binary(max_size=512))
    def test_frame_matches_reference(self, body):
        from repro.compression.serialization import (
            _reference_frame_with_checksum,
            frame_with_checksum,
        )

        assert frame_with_checksum(body) == _reference_frame_with_checksum(body)

    @given(st.binary(min_size=1, max_size=512))
    def test_frame_accepts_any_buffer_type(self, body):
        from repro.compression.serialization import (
            _reference_frame_with_checksum,
            frame_with_checksum,
        )

        expected = _reference_frame_with_checksum(body)
        assert frame_with_checksum(bytearray(body)) == expected
        assert frame_with_checksum(memoryview(body)) == expected
        assert frame_with_checksum(np.frombuffer(body, dtype=np.uint8)) == expected

    @given(st.binary(max_size=512))
    def test_pooled_frame_matches_reference(self, body):
        from repro.compression.parallel import BitstreamPool
        from repro.compression.serialization import (
            _reference_frame_with_checksum,
            frame_with_checksum,
        )

        pool = BitstreamPool()
        with frame_with_checksum(body, pool=pool) as lease:
            assert bytes(lease.view) == _reference_frame_with_checksum(body)
        assert pool.stats.live == 0

    @given(st.binary(max_size=512))
    def test_verify_matches_reference_and_is_a_view(self, body):
        from repro.compression.serialization import (
            _reference_verify_checksum_frame,
            frame_with_checksum,
            verify_checksum_frame,
        )

        framed = frame_with_checksum(body)
        got = verify_checksum_frame(framed)
        assert isinstance(got, memoryview)  # no body copy on the hot path
        assert bytes(got) == _reference_verify_checksum_frame(framed) == body

    def test_pooled_steady_state_reuses_arenas(self):
        from repro.compression.parallel import BitstreamPool
        from repro.compression.serialization import frame_with_checksum

        pool = BitstreamPool()
        body = bytes(range(200))
        frame_with_checksum(body, pool=pool).release()
        created = pool.stats.arenas_created
        for _ in range(10):
            frame_with_checksum(body, pool=pool).release()
        assert pool.stats.arenas_created == created
        assert pool.stats.reuses == 10
