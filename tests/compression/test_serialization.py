"""Tests for the compact header serializer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.serialization import (
    pack_meta,
    read_varint,
    unpack_meta,
    write_varint,
)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 255, 300, 2**20, 2**63])
    def test_roundtrip(self, value):
        out = bytearray()
        write_varint(out, value)
        decoded, pos = read_varint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            write_varint(bytearray(), -1)

    def test_truncated_stream(self):
        out = bytearray()
        write_varint(out, 2**20)
        with pytest.raises(ValueError, match="truncated"):
            read_varint(bytes(out[:-1]), 0)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip_property(self, value):
        out = bytearray()
        write_varint(out, value)
        decoded, _ = read_varint(bytes(out), 0)
        assert decoded == value

    def test_small_values_take_one_byte(self):
        out = bytearray()
        write_varint(out, 100)
        assert len(out) == 1


class TestPackMeta:
    def test_roundtrip_all_types(self):
        meta = {
            "int": 42,
            "neg": -17,
            "float": 3.25,
            "str": "vector_lz",
            "bytes": b"\x00\xff\x01",
            "arr": np.arange(12, dtype=np.int64).reshape(3, 4),
        }
        packed = pack_meta(meta)
        decoded, pos = unpack_meta(packed)
        assert pos == len(packed)
        assert decoded["int"] == 42
        assert decoded["neg"] == -17
        assert decoded["float"] == 3.25
        assert decoded["str"] == "vector_lz"
        assert decoded["bytes"] == b"\x00\xff\x01"
        np.testing.assert_array_equal(decoded["arr"], meta["arr"])
        assert decoded["arr"].dtype == np.int64

    def test_empty_meta(self):
        decoded, pos = unpack_meta(pack_meta({}))
        assert decoded == {}
        assert pos == 1  # single varint 0

    def test_preserves_key_order(self):
        meta = {"z": 1, "a": 2, "m": 3}
        decoded, _ = unpack_meta(pack_meta(meta))
        assert list(decoded) == ["z", "a", "m"]

    def test_array_dtype_preserved(self):
        for dtype in (np.uint8, np.int32, np.float32, np.float64, np.uint64):
            meta = {"a": np.array([1, 2, 3], dtype=dtype)}
            decoded, _ = unpack_meta(pack_meta(meta))
            assert decoded["a"].dtype == dtype

    def test_empty_array(self):
        decoded, _ = unpack_meta(pack_meta({"a": np.zeros((0, 3), dtype=np.float32)}))
        assert decoded["a"].shape == (0, 3)

    def test_bool_rejected(self):
        with pytest.raises(TypeError, match="bool"):
            pack_meta({"flag": True})

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            pack_meta({"x": object()})

    def test_unknown_tag_rejected(self):
        packed = bytearray(pack_meta({"k": 1}))
        # Corrupt the value tag ('I') into an unknown letter.
        packed[packed.index(ord("I"))] = ord("Q")
        with pytest.raises(ValueError, match="unknown meta tag"):
            unpack_meta(bytes(packed))

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(
                st.integers(min_value=-(2**62), max_value=2**62),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=16),
                st.binary(max_size=16),
            ),
            max_size=6,
        )
    )
    def test_roundtrip_property(self, meta):
        decoded, pos = unpack_meta(pack_meta(meta))
        packed = pack_meta(meta)
        assert pos == len(packed)
        assert decoded == meta

    def test_sequential_headers(self):
        """Two headers packed back-to-back parse at returned offsets."""
        first = pack_meta({"a": 1})
        second = pack_meta({"b": "x"})
        blob = first + second
        meta1, pos = unpack_meta(blob)
        meta2, end = unpack_meta(blob, pos)
        assert meta1 == {"a": 1}
        assert meta2 == {"b": "x"}
        assert end == len(blob)
