"""Tests for the vector-based LZ encoder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.vector_lz import (
    VectorLZCompressor,
    find_vector_matches,
    vector_lz_decode,
    vector_lz_encode,
)
from tests.conftest import make_hot_batch


class TestFindMatches:
    def test_exact_repeat_found(self):
        codes = np.array([[1, 2], [3, 4], [1, 2]])
        is_match, offsets = find_vector_matches(codes, window=255)
        np.testing.assert_array_equal(is_match, [False, False, True])
        assert offsets[2] == 2

    def test_nearest_occurrence_wins(self):
        codes = np.array([[1, 1], [1, 1], [1, 1]])
        is_match, offsets = find_vector_matches(codes, window=255)
        np.testing.assert_array_equal(offsets[1:], [1, 1])

    def test_window_excludes_stale_rows(self):
        codes = np.array([[7, 7], [1, 1], [2, 2], [7, 7]])
        is_match, _ = find_vector_matches(codes, window=2)
        assert not is_match[3]  # distance 3 > window 2

    def test_window_boundary_inclusive(self):
        codes = np.array([[7, 7], [1, 1], [7, 7]])
        is_match, offsets = find_vector_matches(codes, window=2)
        assert is_match[2] and offsets[2] == 2

    def test_no_false_matches_on_distinct_rows(self):
        codes = np.arange(20).reshape(10, 2)
        is_match, _ = find_vector_matches(codes, window=255)
        assert not is_match.any()

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            find_vector_matches(np.zeros((2, 2), dtype=np.int64), window=0)

    def test_partial_row_difference_is_literal(self):
        """Rows differing in one element must not match (fixed pattern length)."""
        codes = np.array([[1, 2, 3], [1, 2, 4]])
        is_match, _ = find_vector_matches(codes, window=255)
        assert not is_match[1]


class TestEncodeDecode:
    def test_roundtrip_hot_batch(self):
        rng = np.random.default_rng(0)
        pool = rng.integers(0, 100, size=(10, 16))
        codes = pool[rng.integers(0, 10, size=200)]
        encoded = vector_lz_encode(codes, window=255)
        np.testing.assert_array_equal(vector_lz_decode(encoded), codes)
        assert encoded.n_matches > 150

    def test_roundtrip_all_unique(self):
        codes = np.arange(64).reshape(8, 8)
        encoded = vector_lz_encode(codes)
        np.testing.assert_array_equal(vector_lz_decode(encoded), codes)
        assert encoded.n_matches == 0

    def test_roundtrip_all_identical(self):
        codes = np.full((50, 4), 3, dtype=np.int64)
        encoded = vector_lz_encode(codes)
        np.testing.assert_array_equal(vector_lz_decode(encoded), codes)
        assert encoded.n_matches == 49

    def test_roundtrip_single_row(self):
        codes = np.array([[9, 8, 7]])
        encoded = vector_lz_encode(codes)
        np.testing.assert_array_equal(vector_lz_decode(encoded), codes)

    def test_roundtrip_empty(self):
        codes = np.zeros((0, 4), dtype=np.int64)
        encoded = vector_lz_encode(codes)
        assert vector_lz_decode(encoded).shape == (0, 4)

    def test_chained_matches(self):
        """A row matching a row that was itself a match decodes correctly."""
        codes = np.array([[5, 5], [5, 5], [5, 5], [1, 1], [5, 5]])
        encoded = vector_lz_encode(codes, window=2)
        np.testing.assert_array_equal(vector_lz_decode(encoded), codes)

    def test_rejects_negative_codes(self):
        with pytest.raises(ValueError, match="non-negative"):
            vector_lz_encode(np.array([[-1, 2]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            vector_lz_encode(np.arange(4))

    def test_compressed_size_shrinks_with_repeats(self):
        unique = np.arange(1600).reshape(100, 16)
        repeated = np.tile(np.arange(16), (100, 1))
        assert vector_lz_encode(repeated).nbytes < vector_lz_encode(unique).nbytes / 5

    def test_window_growth_finds_more_matches(self):
        """More matches with a larger window (Table VI's mechanism)."""
        rng = np.random.default_rng(42)
        # Rows recur with gaps larger than the small window.
        pool = rng.integers(0, 50, size=(60, 8))
        codes = pool[rng.integers(0, 60, size=500)]
        small = vector_lz_encode(codes, window=32)
        large = vector_lz_encode(codes, window=255)
        assert large.n_matches >= small.n_matches
        assert large.nbytes <= small.nbytes

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, n, d, pool_size, seed, window):
        rng = np.random.default_rng(seed)
        pool = rng.integers(0, 1000, size=(pool_size, d))
        codes = pool[rng.integers(0, pool_size, size=n)]
        encoded = vector_lz_encode(codes, window=window)
        np.testing.assert_array_equal(vector_lz_decode(encoded), codes)


class TestVectorLZCompressor:
    def test_roundtrip_within_bound(self, hot_batch):
        codec = VectorLZCompressor()
        payload = codec.compress(hot_batch, 0.01)
        rec = codec.decompress(payload)
        assert np.abs(hot_batch - rec).max() <= 0.01 + 1e-6

    def test_quantization_creates_matches(self, rng):
        """Vector homogenization: near-identical rows fuse after quantization."""
        base = rng.normal(0, 0.1, size=(1, 16)).astype(np.float32)
        jitter = rng.normal(0, 1e-4, size=(100, 16)).astype(np.float32)
        data = (base + jitter).astype(np.float32)
        codec = VectorLZCompressor()
        tight = len(codec.compress(data, 1e-6))
        loose = len(codec.compress(data, 0.01))
        assert loose < tight / 3

    def test_requires_error_bound(self, hot_batch):
        codec = VectorLZCompressor()
        with pytest.raises(ValueError, match="error_bound"):
            codec.compress(hot_batch)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            VectorLZCompressor(window=0)

    def test_beats_entropy_on_hot_batches(self, rng):
        """LZ-friendly tables: repeats dominate (the paper's EMB Table 5 case)."""
        from repro.compression.entropy import EntropyCompressor

        data = make_hot_batch(rng, batch=512, dim=32, pool=8, unique_fraction=0.02)
        lz = len(VectorLZCompressor().compress(data, 0.01))
        huff = len(EntropyCompressor().compress(data, 0.01))
        assert lz < huff
