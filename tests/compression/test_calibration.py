"""Tests for throughput-profile calibration."""

from __future__ import annotations

import pytest

from repro.compression import EntropyCompressor, VectorLZCompressor
from repro.compression.calibration import calibrate_profile
from tests.conftest import make_hot_batch


class TestCalibrateProfile:
    def test_measures_all_codecs(self, rng):
        sample = make_hot_batch(rng, batch=64, dim=8)
        profile = calibrate_profile(
            sample,
            {"vector_lz": VectorLZCompressor(), "entropy": EntropyCompressor()},
            error_bound=0.01,
            repeats=1,
        )
        for name in ("vector_lz", "entropy"):
            throughput = profile.for_codec(name)
            assert throughput.compress > 0
            assert throughput.decompress > 0

    def test_reference_scaling(self, rng):
        sample = make_hot_batch(rng, batch=64, dim=8)
        known = 40.5e9
        profile = calibrate_profile(
            sample,
            {"vector_lz": VectorLZCompressor(), "entropy": EntropyCompressor()},
            error_bound=0.01,
            repeats=1,
            reference=("vector_lz", known),
        )
        assert profile.for_codec("vector_lz").compress == pytest.approx(known)
        # The other codec's numbers are scaled by the same factor, so the
        # *ratio* between codecs is preserved.
        unscaled = calibrate_profile(
            sample,
            {"vector_lz": VectorLZCompressor(), "entropy": EntropyCompressor()},
            error_bound=0.01,
            repeats=1,
        )
        # Measured throughputs are noisy; only check the scaled profile is
        # consistent within itself (positive finite numbers).
        assert profile.for_codec("entropy").compress > 0

    def test_usable_for_selection(self, rng):
        from repro.adaptive import select_compressor

        sample = make_hot_batch(rng, batch=64, dim=8)
        codecs = {"vector_lz": VectorLZCompressor(), "entropy": EntropyCompressor()}
        profile = calibrate_profile(sample, codecs, error_bound=0.01, repeats=1)
        result = select_compressor(sample, codecs, 0.01, 4e9, profile)
        assert result.best in codecs

    def test_unknown_reference_rejected(self, rng):
        sample = make_hot_batch(rng, batch=16, dim=4)
        with pytest.raises(KeyError, match="reference"):
            calibrate_profile(
                sample,
                {"vector_lz": VectorLZCompressor()},
                error_bound=0.01,
                reference=("zstd", 1e9),
            )

    def test_empty_codecs_rejected(self, rng):
        with pytest.raises(ValueError):
            calibrate_profile(make_hot_batch(rng, batch=8, dim=4), {}, 0.01)
