"""Tests for the buffer-optimization cost model (Fig. 15)."""

from __future__ import annotations

import pytest

from repro.compression.buffer import BufferCostModel
from repro.dist.gpu import GpuModel
from repro.utils.units import MB


class TestBufferCostModel:
    @pytest.fixture
    def model(self) -> BufferCostModel:
        return BufferCostModel()

    def test_fused_beats_chunked(self, model):
        chunks = [8.0 * MB] * 8
        cmp = model.compare_compression(chunks)
        assert cmp.speedup > 1.0

    def test_speedup_grows_with_chunk_count(self, model):
        """Fig. 15: more chunks -> bigger win for the fused kernel."""
        speedups = [
            model.compare_compression([4.0 * MB] * n).speedup for n in (2, 4, 8, 16)
        ]
        assert speedups == sorted(speedups)

    def test_small_blocks_gain_more_than_large(self, model):
        """The paper's 8 MB-vs-64 MB observation: fixed chunk count, smaller
        blocks benefit more (launch overhead + poor utilization dominate)."""
        small = model.compare_compression([8.0 * MB] * 8).speedup
        large = model.compare_compression([64.0 * MB] * 8).speedup
        assert small > large

    def test_single_chunk_near_parity(self, model):
        """With one chunk the only saving is the memcpy elision."""
        cmp = model.compare_compression([32.0 * MB])
        assert 1.0 <= cmp.speedup < 1.2

    def test_max_speedup_plausible(self, model):
        """The paper reports up to 2.04x; the model should live in that
        neighbourhood for its sweep envelope, not at 10x."""
        best = max(
            model.compare_compression([size * MB] * n).speedup
            for n in (2, 4, 8, 16)
            for size in (1, 4, 8, 16, 64)
        )
        assert 1.5 < best < 4.0

    def test_parallel_decompression_beats_serial(self, model):
        chunks = [8.0 * MB] * 8
        cmp = model.compare_decompression(chunks)
        assert cmp.speedup > 1.0

    def test_parallel_decompression_bounded_by_largest_chunk(self, model):
        chunks = [64.0 * MB, 1.0 * MB]
        t = model.parallel_decompression_seconds(chunks)
        assert t >= 64.0 * MB / model.decompress_throughput

    def test_zero_chunks_rejected(self, model):
        with pytest.raises(ValueError):
            model.chunked_compression_seconds([])
        with pytest.raises(ValueError):
            model.fused_compression_seconds([])

    def test_negative_chunk_rejected(self, model):
        with pytest.raises(ValueError):
            model.serial_decompression_seconds([-1.0])

    def test_ratio_affects_memcpy_cost(self):
        low_ratio = BufferCostModel(ratio=1.5)
        high_ratio = BufferCostModel(ratio=50.0)
        chunks = [16.0 * MB] * 4
        assert low_ratio.chunked_compression_seconds(chunks) > high_ratio.chunked_compression_seconds(chunks)

    def test_custom_gpu_launch_overhead_dominates_many_small_chunks(self):
        slow_launch = BufferCostModel(gpu=GpuModel(kernel_launch_overhead=1e-3))
        fast_launch = BufferCostModel(gpu=GpuModel(kernel_launch_overhead=1e-7))
        chunks = [0.1 * MB] * 16
        assert (
            slow_launch.compare_compression(chunks).speedup
            > fast_launch.compare_compression(chunks).speedup
        )
