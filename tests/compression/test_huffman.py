"""Tests for canonical length-limited Huffman coding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.huffman import (
    HuffmanCodebook,
    build_codebook,
    canonical_codes,
    huffman_code_lengths,
    huffman_decode,
    huffman_encode,
    limit_code_lengths,
)


def entropy_bits(freqs: np.ndarray) -> float:
    p = freqs / freqs.sum()
    p = p[p > 0]
    return float(-(p * np.log2(p)).sum())


class TestCodeLengths:
    def test_uniform_four_symbols(self):
        lengths = huffman_code_lengths(np.array([1, 1, 1, 1]))
        np.testing.assert_array_equal(lengths, [2, 2, 2, 2])

    def test_skewed_distribution(self):
        lengths = huffman_code_lengths(np.array([100, 1, 1]))
        assert lengths[0] == 1
        assert set(lengths[1:]) == {2}

    def test_single_symbol(self):
        np.testing.assert_array_equal(huffman_code_lengths(np.array([5])), [1])

    def test_two_symbols(self):
        np.testing.assert_array_equal(huffman_code_lengths(np.array([1, 1000])), [1, 1])

    def test_rejects_zero_frequency(self):
        with pytest.raises(ValueError, match="positive"):
            huffman_code_lengths(np.array([1, 0, 2]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            huffman_code_lengths(np.array([], dtype=np.int64))

    def test_kraft_equality(self):
        """Unlimited Huffman lengths satisfy Kraft with equality."""
        rng = np.random.default_rng(5)
        freqs = rng.integers(1, 1000, size=100)
        lengths = huffman_code_lengths(freqs)
        assert np.isclose(np.sum(2.0 ** -lengths), 1.0)

    def test_optimality_vs_entropy(self):
        """Expected length within 1 bit of entropy (Shannon bound)."""
        rng = np.random.default_rng(6)
        freqs = rng.integers(1, 10000, size=64)
        lengths = huffman_code_lengths(freqs)
        avg = float((freqs * lengths).sum() / freqs.sum())
        h = entropy_bits(freqs)
        assert h <= avg <= h + 1.0

    def test_deterministic(self):
        freqs = np.array([5, 5, 5, 5, 3, 3, 2])
        l1 = huffman_code_lengths(freqs)
        l2 = huffman_code_lengths(freqs)
        np.testing.assert_array_equal(l1, l2)


class TestLimitLengths:
    def test_noop_when_within_limit(self):
        freqs = np.array([4, 3, 2, 1])
        lengths = huffman_code_lengths(freqs)
        limited = limit_code_lengths(lengths, freqs, 15)
        np.testing.assert_array_equal(limited, lengths)

    def test_clamps_and_repairs_kraft(self):
        # Fibonacci-like frequencies force deep trees.
        freqs = np.array([1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987])
        lengths = huffman_code_lengths(freqs)
        assert lengths.max() > 5
        limited = limit_code_lengths(lengths, freqs, 5)
        assert limited.max() <= 5
        assert np.sum(2.0 ** -limited) <= 1.0 + 1e-12

    def test_rejects_impossible_limit(self):
        freqs = np.ones(8, dtype=np.int64)
        lengths = huffman_code_lengths(freqs)
        with pytest.raises(ValueError, match="cannot fit"):
            limit_code_lengths(lengths, freqs, 2)

    @given(st.integers(min_value=2, max_value=200), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_kraft_always_satisfied(self, n, seed):
        rng = np.random.default_rng(seed)
        freqs = rng.integers(1, 10000, size=n)
        lengths = huffman_code_lengths(freqs)
        limit = max(int(np.ceil(np.log2(n))), 4)
        limited = limit_code_lengths(lengths, freqs, limit)
        assert limited.max() <= limit
        assert limited.min() >= 1
        assert np.sum(2.0 ** -limited) <= 1.0 + 1e-12


class TestCanonicalCodes:
    def test_prefix_free(self):
        freqs = np.array([10, 7, 5, 3, 2, 1, 1, 1])
        lengths = huffman_code_lengths(freqs)
        codes = canonical_codes(lengths)
        bit_strings = [format(int(c), f"0{int(l)}b") for c, l in zip(codes, lengths)]
        for i, a in enumerate(bit_strings):
            for j, b in enumerate(bit_strings):
                if i != j:
                    assert not b.startswith(a), f"{a} prefixes {b}"

    def test_canonical_ordering(self):
        """Shorter codes sort numerically before longer ones (left-justified)."""
        freqs = np.array([100, 50, 20, 10, 5, 1])
        lengths = huffman_code_lengths(freqs)
        codes = canonical_codes(lengths)
        justified = [int(c) << (32 - int(l)) for c, l in zip(codes, lengths)]
        order = np.lexsort((np.arange(len(freqs)), lengths))
        assert sorted(justified) == [justified[i] for i in order]

    def test_empty(self):
        assert canonical_codes(np.array([], dtype=np.int64)).size == 0

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            canonical_codes(np.array([0, 1]))


class TestPeekTable:
    def test_full_coverage_when_kraft_tight(self):
        freqs = np.array([4, 2, 1, 1])
        book = build_codebook(freqs)
        table_sym, table_len = book.peek_table()
        assert (table_len > 0).all()  # Kraft equality -> every peek decodable
        # Each symbol's share of the table is 2^(max-len)
        counts = np.bincount(table_sym, minlength=4)
        expected = 2 ** (book.max_length - book.lengths)
        np.testing.assert_array_equal(counts, expected.astype(np.int64))


class TestEncodeDecode:
    def test_roundtrip_simple(self):
        symbols = np.array([0, 1, 2, 1, 0, 0, 3, 2, 1, 0])
        encoded = huffman_encode(symbols, 4)
        np.testing.assert_array_equal(huffman_decode(encoded), symbols)

    def test_roundtrip_single_symbol_stream(self):
        symbols = np.zeros(100, dtype=np.int64)
        encoded = huffman_encode(symbols, 1)
        np.testing.assert_array_equal(huffman_decode(encoded), symbols)

    def test_roundtrip_empty(self):
        encoded = huffman_encode(np.array([], dtype=np.int64), 4)
        assert huffman_decode(encoded).size == 0

    def test_roundtrip_sparse_alphabet(self):
        """Alphabet much larger than the used symbols."""
        symbols = np.array([5, 900, 5, 5, 900, 123])
        encoded = huffman_encode(symbols, 1000)
        np.testing.assert_array_equal(huffman_decode(encoded), symbols)

    def test_chunking_boundaries(self):
        rng = np.random.default_rng(9)
        symbols = rng.integers(0, 16, size=1000)
        encoded = huffman_encode(symbols, 16, chunk_symbols=64)
        assert encoded.chunk_bit_offsets.size == (1000 + 63) // 64
        assert encoded.chunk_symbol_counts.sum() == 1000
        assert encoded.chunk_symbol_counts[-1] == 1000 % 64
        np.testing.assert_array_equal(huffman_decode(encoded), symbols)

    def test_out_of_range_symbols_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            huffman_encode(np.array([0, 4]), 4)
        with pytest.raises(ValueError, match="out of range"):
            huffman_encode(np.array([-1]), 4)

    def test_compression_beats_fixed_width_on_skew(self):
        rng = np.random.default_rng(10)
        # Highly skewed: symbol 0 dominates.
        symbols = np.where(rng.random(5000) < 0.9, 0, rng.integers(1, 256, size=5000))
        encoded = huffman_encode(symbols, 256)
        fixed_bytes = 5000  # 8 bits/symbol
        assert encoded.payload.nbytes < fixed_bytes / 4

    def test_payload_size_matches_expected_bits(self):
        rng = np.random.default_rng(12)
        symbols = rng.integers(0, 8, size=512)
        encoded = huffman_encode(symbols, 8)
        freqs = np.bincount(symbols, minlength=8)
        used = freqs > 0
        total_bits = int((freqs[used] * encoded.code_lengths[used]).sum())
        assert encoded.payload.nbytes == (total_bits + 7) // 8

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=2000),
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=16, max_value=256),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, alphabet, count, seed, chunk):
        rng = np.random.default_rng(seed)
        # Zipf-ish skew mirrors quantized embedding bins.
        raw = rng.zipf(1.5, size=count) - 1 if count else np.array([], dtype=np.int64)
        symbols = np.minimum(raw, alphabet - 1).astype(np.int64)
        encoded = huffman_encode(symbols, alphabet, chunk_symbols=chunk)
        np.testing.assert_array_equal(huffman_decode(encoded), symbols)

    def test_expected_bits_helper(self):
        freqs = np.array([8, 4, 2, 2])
        book = build_codebook(freqs)
        assert book.expected_bits(freqs) == pytest.approx(
            float((freqs * book.lengths).sum() / freqs.sum())
        )
