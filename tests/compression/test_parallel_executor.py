"""Differential tests: CodecExecutor parallel payloads vs the serial path.

The executor's determinism contract is that payload *bytes* are identical
at every worker count and on every backend — serial, thread, and process —
for every registered codec.  These tests pin that contract, plus the
pooled-buffer path, chunked table compression, and decode equivalence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.parallel import (
    BitstreamPool,
    CodecExecutor,
    CompressJob,
    available_workers,
)
from repro.compression.registry import (
    available_compressors,
    decompress_any,
    get_compressor,
)

BOUND = 1e-2


@pytest.fixture(scope="module")
def tables():
    rng = np.random.default_rng(7)
    return [
        np.asarray(rng.normal(0.0, 2.0, size=(37, 16)), dtype=np.float32),
        np.asarray(rng.normal(0.0, 1.0, size=(64, 8)), dtype=np.float32),
        np.zeros((5, 4), dtype=np.float32),
        np.asarray(rng.normal(0.0, 3.0, size=(128, 32)), dtype=np.float32),
    ]


@pytest.fixture(scope="module")
def executors():
    """One executor per backend, shared across the module (the process
    pool's fork cost is paid once)."""
    with CodecExecutor(1) as serial, CodecExecutor(
        3, backend="thread"
    ) as thread, CodecExecutor(2, backend="process") as process:
        yield {"serial": serial, "thread": thread, "process": process}


class TestConstruction:
    def test_workers_one_is_serial(self):
        assert CodecExecutor(1).backend == "serial"
        assert CodecExecutor(1, backend="process").backend == "serial"

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            CodecExecutor(0)
        with pytest.raises(ValueError, match="backend"):
            CodecExecutor(2, backend="gpu")

    def test_available_workers_positive(self):
        assert available_workers() >= 1


class TestDifferential:
    @pytest.mark.parametrize("codec", sorted(available_compressors()))
    def test_parallel_bytes_identical_to_serial(self, codec, tables, executors):
        """Every backend, same payload bytes — for every registered codec."""
        jobs = [CompressJob(codec, t, BOUND) for t in tables]
        expected = [bytes(p) for p in executors["serial"].compress_batch(jobs)]
        direct = get_compressor(codec)
        assert expected == [bytes(direct.compress(t, BOUND)) for t in tables]
        for backend in ("thread", "process"):
            got = [bytes(p) for p in executors[backend].compress_batch(jobs)]
            assert got == expected, f"{codec} payloads diverged on {backend}"

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_decompress_matches_serial(self, backend, tables, executors):
        payloads = executors["serial"].compress_batch(
            [CompressJob("hybrid", t, BOUND) for t in tables]
        )
        expected = [decompress_any(p) for p in payloads]
        got = executors[backend].decompress_batch(payloads)
        assert len(got) == len(expected)
        for g, e, t in zip(got, expected, tables):
            np.testing.assert_array_equal(g, e)
            assert np.max(np.abs(g - t), initial=0.0) <= BOUND * 1.0001

    def test_parallelism_cap_changes_nothing(self, tables, executors):
        jobs = [CompressJob("vector_lz", t, BOUND) for t in tables]
        expected = [bytes(p) for p in executors["serial"].compress_batch(jobs)]
        for cap in (1, 2, 8):
            got = [bytes(p) for p in executors["thread"].compress_batch(jobs, parallelism=cap)]
            assert got == expected

    def test_job_kwargs_reach_the_codec(self, tables, executors):
        table = tables[3]
        jobs = [CompressJob("vector_lz", table, BOUND, (("window", 4),))]
        (payload,) = executors["thread"].compress_batch(jobs)
        assert bytes(payload) == bytes(get_compressor("vector_lz", window=4).compress(table, BOUND))

    def test_empty_batch(self, executors):
        for backend in ("serial", "thread", "process"):
            assert executors[backend].compress_batch([]) == []
            assert executors[backend].decompress_batch([]) == []


class TestPooledExecutor:
    def test_pooled_payloads_identical_and_arenas_reused(self, tables):
        pool = BitstreamPool()
        jobs = [CompressJob("hybrid", t, BOUND) for t in tables]
        expected = [bytes(p) for p in CodecExecutor(1).compress_batch(jobs)]
        with CodecExecutor(1, pool=pool) as pooled:
            first = [bytes(p) for p in pooled.compress_batch(jobs)]
            assert first == expected
            pooled.release_leases()
            created = pool.stats.arenas_created
            second = [bytes(p) for p in pooled.compress_batch(jobs)]
            assert second == expected
            assert pool.stats.arenas_created == created  # recycled, not allocated
            assert pool.stats.reuses >= len(jobs)
            pooled.release_leases()
        assert pool.stats.live == 0

    def test_pooled_payloads_decode(self, tables):
        pool = BitstreamPool()
        with CodecExecutor(1, pool=pool) as pooled:
            payloads = pooled.compress_batch([CompressJob("fp16", t) for t in tables])
            for payload, table in zip(payloads, tables):
                assert isinstance(payload, memoryview)
                np.testing.assert_allclose(decompress_any(payload), table, atol=2e-2, rtol=1e-2)
            pooled.release_leases()


class TestChunked:
    @pytest.mark.parametrize("chunks", [1, 3, 8, 200])
    def test_chunked_roundtrip(self, chunks, tables, executors):
        table = tables[3]
        payloads = executors["serial"].compress_chunked("hybrid", table, BOUND, chunks=chunks)
        assert len(payloads) == min(chunks, table.shape[0])
        out = executors["serial"].decompress_chunked(payloads)
        assert out.shape == table.shape
        assert np.max(np.abs(out - table)) <= BOUND * 1.0001

    def test_chunked_bytes_identical_across_backends(self, tables, executors):
        table = tables[0]
        expected = [
            bytes(p)
            for p in executors["serial"].compress_chunked("vector_lz", table, BOUND, chunks=4)
        ]
        for backend in ("thread", "process"):
            got = [
                bytes(p)
                for p in executors[backend].compress_chunked("vector_lz", table, BOUND, chunks=4)
            ]
            assert got == expected
            np.testing.assert_array_equal(
                executors[backend].decompress_chunked(got),
                executors["serial"].decompress_chunked(expected),
            )

    def test_invalid_chunks_rejected(self, executors):
        with pytest.raises(ValueError, match="chunks"):
            executors["serial"].compress_chunked("fp16", np.zeros((4, 4), np.float32), chunks=0)


class TestHomomorphicCrossBackend:
    """The homomorphic codecs ride the same determinism contract — and
    their *aggregated* payloads must also be byte-identical no matter
    which backend produced the leaves."""

    @pytest.mark.parametrize("codec", ["count_sum", "quant_sum"])
    def test_aggregated_bytes_identical_across_backends(self, tables, executors, codec):
        from repro.compression.homomorphic import agg_fold, composed_bound

        compressor = get_compressor(codec)
        bound = BOUND if compressor.error_bounded else None
        # Equal-shape leaves (aggregation requires it): slices of one table.
        leaves = [np.ascontiguousarray(tables[3][i * 32 : (i + 1) * 32]) for i in range(4)]
        jobs = [CompressJob(codec, leaf, bound) for leaf in leaves]
        expected_leaves = [bytes(p) for p in executors["serial"].compress_batch(jobs)]
        expected_agg = agg_fold(expected_leaves)
        for backend in ("thread", "process"):
            payloads = [bytes(p) for p in executors[backend].compress_batch(jobs)]
            assert payloads == expected_leaves, f"{codec} leaves diverged on {backend}"
            assert agg_fold(payloads) == expected_agg
        decoded = decompress_any(expected_agg)
        exact = np.sum([leaf.astype(np.float64) for leaf in leaves], axis=0)
        # count_sum decodes to float32, so allow one float32 ulp around the
        # exact float64 sum; quant_sum gets its composed bound.
        slack = float(np.spacing(np.float32(np.max(np.abs(exact), initial=1.0))))
        tolerance = composed_bound(expected_agg) * 1.0001 + slack
        assert np.max(np.abs(decoded.astype(np.float64) - exact), initial=0.0) <= tolerance

    def test_aggregated_payload_decodes_on_every_backend(self, tables, executors):
        from repro.compression.homomorphic import agg_fold

        leaves = [np.ascontiguousarray(tables[3][i * 32 : (i + 1) * 32]) for i in range(4)]
        payload = agg_fold(
            executors["serial"].compress_batch(
                [CompressJob("count_sum", leaf, None) for leaf in leaves]
            )
        )
        expected = decompress_any(payload)
        for backend in ("serial", "thread", "process"):
            (got,) = executors[backend].decompress_batch([payload])
            np.testing.assert_array_equal(got, expected)


class TestProcessSlotOverflow:
    def test_payload_larger_than_slot_falls_back_to_pickle(self, tables):
        """A slot smaller than any payload forces the bytes fallback —
        results must still be byte-identical."""
        jobs = [CompressJob("fp16", t) for t in tables]
        expected = [bytes(p) for p in CodecExecutor(1).compress_batch(jobs)]
        with CodecExecutor(2, backend="process", slot_nbytes=16) as tiny:
            assert [bytes(p) for p in tiny.compress_batch(jobs)] == expected
            decoded = tiny.decompress_batch(expected)
        for d, t in zip(decoded, tables):
            np.testing.assert_allclose(d, t, atol=2e-2, rtol=1e-2)
