"""Failure-injection tests: corrupt and truncated payloads.

A compressor used inside a training loop must fail loudly on mangled
input — silently decoding garbage would corrupt the model.  These tests
verify that every codec raises a Python-level exception (never hangs,
never returns a wrong-shaped array) for a family of corruptions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import available_compressors, decompress_any, get_compressor
from repro.compression.base import MAGIC, parse_payload
from tests.conftest import make_hot_batch


@pytest.fixture(scope="module")
def payloads():
    rng = np.random.default_rng(99)
    batch = make_hot_batch(rng, batch=128, dim=16)
    out = {}
    for name in available_compressors():
        codec = get_compressor(name)
        out[name] = (codec, codec.compress(batch, 0.01 if codec.error_bounded else None), batch)
    return out


class TestCorruptPayloads:
    def test_bad_magic_rejected_every_codec(self, payloads):
        for name, (codec, payload, _) in payloads.items():
            mangled = bytes([MAGIC ^ 0xFF]) + payload[1:]
            with pytest.raises(ValueError, match="magic"):
                codec.decompress(mangled)

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            decompress_any(b"")

    @pytest.mark.parametrize("fraction", [0.05, 0.5, 0.95])
    def test_truncation_never_hangs_or_misshapes(self, payloads, fraction):
        """Truncated payloads raise; they never return a wrong result."""
        for name, (codec, payload, batch) in payloads.items():
            cut = max(1, int(len(payload) * fraction))
            truncated = payload[:cut]
            try:
                result = codec.decompress(truncated)
            except Exception:
                continue  # loud failure: exactly what we want
            # If decode "succeeded", framing must have been complete and the
            # shape contract must still hold.
            assert result.shape == batch.shape, name

    def test_header_tag_corruption_rejected(self, payloads):
        codec, payload, _ = payloads["entropy"]
        # Flip a byte inside the header region (just past the magic byte).
        mangled = bytearray(payload)
        mangled[1] ^= 0xFF
        with pytest.raises(Exception):
            codec.decompress(bytes(mangled))

    def test_cross_codec_payload_rejected(self, payloads):
        lz_codec, lz_payload, _ = payloads["vector_lz"]
        entropy_codec, _, _ = payloads["entropy"]
        with pytest.raises(ValueError, match="produced by codec"):
            entropy_codec.decompress(lz_payload)

    def test_parse_payload_roundtrip_headers(self, payloads):
        for name, (_, payload, batch) in payloads.items():
            header, body = parse_payload(payload)
            assert tuple(int(s) for s in header["shape"]) == batch.shape
            assert len(body) <= len(payload)

    def test_body_bitflip_huffman_detected_or_bounded(self, payloads):
        """A flipped bit in the entropy body either raises or decodes to the
        declared shape (the jump-chain guard prevents hangs)."""
        codec, payload, batch = payloads["entropy"]
        header, body = parse_payload(payload)
        body_start = len(payload) - len(body)
        for offset in (0, len(body) // 2, len(body) - 1):
            mangled = bytearray(payload)
            mangled[body_start + offset] ^= 0x55
            try:
                result = codec.decompress(bytes(mangled))
            except Exception:
                continue
            assert result.shape == batch.shape
