"""Tests for the compression hot-loop caches (codebooks, pins, LRU)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.cache import (
    EncoderPinCache,
    LruCache,
    TableCodebookCache,
)
from repro.compression.entropy import EntropyCompressor
from repro.compression.hybrid import HybridCompressor
from repro.compression.registry import decompress_any


class TestLruCache:
    def test_get_put_and_hit_counters(self):
        cache = LruCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_order_is_least_recently_used(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LruCache(0)


class TestTableCodebookCache:
    def _store(self, cache, key, alphabet=8):
        lengths = np.full(alphabet, 3, dtype=np.int64)
        codes = np.arange(alphabet, dtype=np.uint64)
        return cache.store(key, lengths, codes)

    def test_miss_then_hit(self):
        cache = TableCodebookCache(refresh_every=4)
        symbols = np.array([0, 1, 2])
        assert cache.lookup(7, symbols) is None
        self._store(cache, 7)
        assert cache.lookup(7, symbols) is not None
        assert cache.hits == 1 and cache.misses == 1

    def test_staleness_refresh_policy(self):
        cache = TableCodebookCache(refresh_every=2)
        symbols = np.array([0, 1])
        self._store(cache, 0)
        assert cache.lookup(0, symbols) is not None
        assert cache.lookup(0, symbols) is not None
        # Third use exceeds refresh_every=2: forced rebuild.
        assert cache.lookup(0, symbols) is None
        assert cache.stale_refreshes == 1

    def test_coverage_miss_on_unseen_symbol(self):
        cache = TableCodebookCache(refresh_every=10)
        entry = self._store(cache, 0, alphabet=4)
        entry.lengths[2] = 0  # symbol 2 has no code in the cached book
        assert cache.lookup(0, np.array([0, 2])) is None
        assert cache.coverage_misses == 1
        assert cache.lookup(0, np.array([0, 1])) is not None

    def test_coverage_miss_on_alphabet_growth(self):
        cache = TableCodebookCache(refresh_every=10)
        self._store(cache, 0, alphabet=4)
        assert cache.lookup(0, np.array([0, 9])) is None

    def test_rejects_bad_refresh(self):
        with pytest.raises(ValueError):
            TableCodebookCache(refresh_every=0)


class TestEncoderPinCache:
    def test_trial_then_pinned_replay(self):
        pins = EncoderPinCache(refresh_every=3)
        assert pins.pinned("t") is None
        pins.record_winner("t", "lz")
        assert [pins.pinned("t") for _ in range(3)] == ["lz", "lz", "lz"]
        # Pin aged out: next call must re-trial.
        assert pins.pinned("t") is None
        assert pins.trials == 1 and pins.pinned_hits == 3

    def test_keys_are_independent(self):
        pins = EncoderPinCache(refresh_every=8)
        pins.record_winner(1, "lz")
        assert pins.pinned(2) is None
        assert pins.pinned(1) == "lz"


class TestEntropyCompressorCaching:
    def test_cached_roundtrip_is_exact_across_shifting_batches(self):
        """Stale codebooks may cost ratio, never correctness."""
        rng = np.random.default_rng(0)
        cache = TableCodebookCache(refresh_every=16)
        codec = EntropyCompressor(codebook_cache=cache)
        base = rng.normal(0, 0.1, size=(64, 8)).astype(np.float32)
        for it in range(6):
            batch = base[rng.integers(0, 64, size=100)] + np.float32(1e-4 * it)
            payload = codec.compress_keyed(5, batch, 0.01)
            rec = codec.decompress(payload)
            assert np.abs(batch - rec).max() <= 0.01 + 1e-6
        assert cache.hits > 0

    def test_unkeyed_compress_does_not_touch_cache(self):
        cache = TableCodebookCache()
        codec = EntropyCompressor(codebook_cache=cache)
        data = np.random.default_rng(1).normal(0, 0.1, (32, 8)).astype(np.float32)
        codec.compress(data, 0.01)
        assert cache.hits == 0 and cache.misses == 0

    def test_cache_hit_skips_codebook_rebuild_payload_stays_decodable(self):
        rng = np.random.default_rng(2)
        cache = TableCodebookCache(refresh_every=8)
        codec = EntropyCompressor(codebook_cache=cache)
        data = rng.normal(0, 0.1, (128, 16)).astype(np.float32)
        first = codec.compress_keyed("t", data, 0.01)
        second = codec.compress_keyed("t", data, 0.01)
        # Identical input + cached book: payloads identical, decode exact.
        assert first == second
        assert cache.hits == 1
        np.testing.assert_array_equal(codec.decompress(first), codec.decompress(second))

    def test_code_min_shift_forces_rebuild_not_misaligned_reuse(self):
        """A batch whose minimum bin shifts must miss the cache: the dense
        indices would otherwise index the cached book misaligned, silently
        inflating payloads (exact roundtrip, wrong code lengths)."""
        rng = np.random.default_rng(11)
        cache = TableCodebookCache(refresh_every=100)
        codec = EntropyCompressor(codebook_cache=cache)
        fresh = EntropyCompressor()
        # Skewed distribution around 0 with a spread minimum.
        values = np.where(
            rng.random((256, 16)) < 0.9, 0.0, rng.normal(0, 0.2, (256, 16))
        ).astype(np.float32)
        batch1 = np.concatenate([values, np.full((1, 16), -2.00, np.float32)])
        batch2 = np.concatenate([values, np.full((1, 16), -1.98, np.float32)])
        codec.compress_keyed("t", batch1, 0.01)
        cached_payload = codec.compress_keyed("t", batch2, 0.01)
        assert cache.shift_misses == 1
        # The keyed payload must not be inflated vs a fresh (uncached) encode.
        fresh_payload = fresh.compress(batch2, 0.01)
        assert len(cached_payload) <= len(fresh_payload) * 1.05
        rec = codec.decompress(cached_payload)
        assert np.abs(batch2 - rec).max() <= 0.01 + 1e-6

    def test_coverage_fallback_on_distribution_shift(self):
        """A batch with out-of-book symbols must rebuild, not crash."""
        rng = np.random.default_rng(3)
        cache = TableCodebookCache(refresh_every=100)
        codec = EntropyCompressor(codebook_cache=cache)
        # Both batches share the exact minimum (same code_min shift), so the
        # wide batch exercises the coverage check, not the shift check.
        floor = np.full((1, 8), -2.0, dtype=np.float32)
        narrow = np.concatenate([rng.normal(0, 0.01, (64, 8)).astype(np.float32), floor])
        codec.compress_keyed("t", narrow, 0.001)
        wide = np.concatenate([rng.normal(0, 0.3, (64, 8)).astype(np.float32), floor])
        payload = codec.compress_keyed("t", wide, 0.001)
        rec = codec.decompress(payload)
        assert np.abs(wide - rec).max() <= 0.001 + 1e-5
        assert cache.coverage_misses >= 1


class TestHybridPinning:
    def _lz_friendly(self, rng):
        pool = rng.normal(0, 0.1, size=(4, 16)).astype(np.float32)
        return pool[rng.integers(0, 4, size=256)]

    def test_pinned_fast_path_replays_winner(self):
        rng = np.random.default_rng(4)
        codec = HybridCompressor(pin_refresh=4)
        data = self._lz_friendly(rng)
        first = codec.compress_keyed(0, data, 0.01)
        assert codec.pins.trials == 1
        for _ in range(4):
            codec.compress_keyed(0, data, 0.01)
        assert codec.pins.pinned_hits == 4
        # Window exhausted: the next call re-trials.
        codec.compress_keyed(0, data, 0.01)
        assert codec.pins.trials == 2
        # Pinned payloads stay self-describing.
        rec = decompress_any(first)
        assert np.abs(data - rec).max() <= 0.01 + 1e-6

    def test_pinned_payload_matches_auto_choice_on_stable_data(self):
        rng = np.random.default_rng(5)
        pinned = HybridCompressor(pin_refresh=8)
        auto = HybridCompressor()
        data = self._lz_friendly(rng)
        pinned.compress_keyed(0, data, 0.01)  # trial
        assert pinned.compress_keyed(0, data, 0.01) == auto.compress(data, 0.01)

    def test_no_pinning_without_refresh_window(self):
        codec = HybridCompressor()
        assert codec.pins is None
        data = self._lz_friendly(np.random.default_rng(6))
        payload = codec.compress_keyed(0, data, 0.01)
        assert np.abs(data - decompress_any(payload)).max() <= 0.01 + 1e-6

    def test_pinned_encoder_modes_forward_key(self):
        rng = np.random.default_rng(7)
        data = self._lz_friendly(rng)
        for mode in ("lz", "huffman"):
            codec = HybridCompressor(encoder=mode, pin_refresh=4)
            payload = codec.compress_keyed(0, data, 0.01)
            assert np.abs(data - decompress_any(payload)).max() <= 0.01 + 1e-6
            assert codec.pins.trials == 0  # pinned modes never trial


class TestPipelineCaching:
    def _pipeline(self):
        from repro.adaptive import AdaptiveController, OfflineAnalyzer
        from repro.train import CompressionPipeline

        rng = np.random.default_rng(8)
        samples = {
            j: rng.normal(0, 0.1, size=(64, 8)).astype(np.float32) for j in range(2)
        }
        plan = OfflineAnalyzer().analyze(samples)
        return CompressionPipeline(AdaptiveController(plan)), samples

    def test_roundtrip_unchanged_and_codebook_cache_engaged(self):
        pipeline, samples = self._pipeline()
        for it in range(4):
            for table_id, rows in samples.items():
                rec = pipeline.roundtrip(table_id, rows, it)
                bound = pipeline.controller.error_bound(table_id, it)
                assert np.abs(rows - rec).max() <= bound * (1 + 1e-5)
        entropy_tables = [
            t for t in samples
            if pipeline.controller.compressor_name(t) == "entropy"
        ]
        if entropy_tables:
            assert pipeline.codebook_cache.hits > 0

    def test_codebook_cache_can_be_disabled(self):
        from repro.adaptive import AdaptiveController, OfflineAnalyzer
        from repro.train import CompressionPipeline

        rng = np.random.default_rng(9)
        samples = {0: rng.normal(0, 0.1, size=(32, 8)).astype(np.float32)}
        plan = OfflineAnalyzer().analyze(samples)
        pipeline = CompressionPipeline(AdaptiveController(plan), codebook_refresh=0)
        assert pipeline.codebook_cache is None
        rec = pipeline.roundtrip(0, samples[0], 0)
        assert rec.shape == samples[0].shape

    def test_buffer_models_are_memoized(self):
        pipeline, _ = self._pipeline()
        chunks = [("entropy", 1 << 20), ("vector_lz", 1 << 20)]
        t1 = pipeline.compression_seconds(chunks)
        models_after_first = dict(pipeline._buffer_models)
        t2 = pipeline.compression_seconds(chunks)
        assert t1 == t2
        for key, model in pipeline._buffer_models.items():
            assert models_after_first[key] is model
