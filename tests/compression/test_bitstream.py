"""Tests for vectorized bit packing/unpacking."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.bitstream import (
    bits_to_bytes,
    pack_codes,
    pack_fixed,
    unpack_fixed,
)


class TestBitsToBytes:
    @pytest.mark.parametrize("bits,expected", [(0, 0), (1, 1), (8, 1), (9, 2), (16, 2), (17, 3)])
    def test_values(self, bits, expected):
        assert bits_to_bytes(bits) == expected


class TestPackCodes:
    def test_single_byte_codes(self):
        packed, total = pack_codes(np.array([0b101]), np.array([3]))
        assert total == 3
        assert packed[0] == 0b10100000

    def test_cross_byte_boundary(self):
        # 6 + 6 bits -> 12 bits spanning two bytes.
        packed, total = pack_codes(np.array([0b111111, 0b000001]), np.array([6, 6]))
        assert total == 12
        assert packed[0] == 0b11111100
        assert packed[1] == 0b00010000

    def test_empty(self):
        packed, total = pack_codes(np.array([], dtype=np.uint64), np.array([], dtype=np.int64))
        assert total == 0
        assert packed.size == 0

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([1]), np.array([0]))

    def test_rejects_oversize_length(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([1]), np.array([58]))

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([1, 2]), np.array([3]))

    def test_manual_reference(self):
        """Compare against a bit-by-bit Python reference."""
        rng = np.random.default_rng(7)
        lengths = rng.integers(1, 20, size=100)
        codes = np.array([rng.integers(0, 1 << l) for l in lengths], dtype=np.uint64)
        packed, total = pack_codes(codes, lengths)
        bitstring = "".join(format(int(c), f"0{l}b") for c, l in zip(codes, lengths))
        assert total == len(bitstring)
        unpacked_bits = np.unpackbits(packed)[:total]
        assert "".join(map(str, unpacked_bits)) == bitstring


class TestFixedWidth:
    def test_roundtrip_simple(self):
        values = np.array([3, 7, 0, 5, 1], dtype=np.uint64)
        packed, total = pack_fixed(values, 3)
        assert total == 15
        out = unpack_fixed(packed, 5, 3)
        np.testing.assert_array_equal(out, values)

    def test_roundtrip_with_offset(self):
        a = np.array([1, 2, 3], dtype=np.uint64)
        b = np.array([10, 20, 30], dtype=np.uint64)
        packed_a, bits_a = pack_fixed(a, 5)
        packed_b, _ = pack_fixed(b, 5)
        # Concatenate at bit granularity by repacking jointly.
        joint, _ = pack_fixed(np.concatenate([a, b]), 5)
        out = unpack_fixed(joint, 3, 5, bit_offset=bits_a)
        np.testing.assert_array_equal(out, b)

    def test_width_zero_all_zero(self):
        packed, total = pack_fixed(np.zeros(4, dtype=np.uint64), 0)
        assert total == 0
        np.testing.assert_array_equal(unpack_fixed(packed, 4, 0), np.zeros(4))

    def test_width_zero_nonzero_rejected(self):
        with pytest.raises(ValueError):
            pack_fixed(np.array([1], dtype=np.uint64), 0)

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            pack_fixed(np.array([8], dtype=np.uint64), 3)

    def test_short_stream_rejected(self):
        packed, _ = pack_fixed(np.array([1, 2], dtype=np.uint64), 4)
        with pytest.raises(ValueError, match="too short"):
            unpack_fixed(packed, 5, 4)

    @given(
        st.integers(min_value=1, max_value=57),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, width, count, seed):
        rng = np.random.default_rng(seed)
        hi = 1 << width
        values = rng.integers(0, hi, size=count, dtype=np.uint64)
        packed, total = pack_fixed(values, width)
        assert total == count * width
        out = unpack_fixed(packed, count, width)
        np.testing.assert_array_equal(out, values)

    def test_max_width_57(self):
        values = np.array([(1 << 57) - 1, 0, 12345678901234567], dtype=np.uint64)
        packed, _ = pack_fixed(values, 57)
        np.testing.assert_array_equal(unpack_fixed(packed, 3, 57), values)
