"""Differential tests: vectorized hot paths vs the frozen seed oracles.

The vectorization PR rewrote every per-element decode/search loop with
batched NumPy passes while keeping the original implementations as
``_reference_*`` functions.  These property tests pin the new code to the
old semantics: byte-identical encoded payloads, element-identical decodes,
and identical error behaviour, over randomized shapes, alphabets, windows,
and error bounds.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.baselines.fzgpu_like import (
    _reference_pack_bitplanes,
    _reference_unpack_bitplanes,
    pack_bitplanes,
    unpack_bitplanes,
)
from repro.compression.baselines.lz_generic import (
    _reference_lz77_decode_bytes,
    _reference_lz77_encode_bytes,
    lz77_decode_bytes,
    lz77_encode_bytes,
)
from repro.compression.bitstream import (
    _reference_pack_codes,
    _reference_unpack_fixed,
    pack_codes,
    pack_fixed,
    unpack_fixed,
)
from repro.compression.huffman import (
    _reference_huffman_code_lengths,
    _reference_huffman_decode,
    _reference_huffman_encode,
    _reference_sliding_windows,
    _sliding_windows,
    huffman_code_lengths,
    huffman_decode,
    huffman_encode,
)
from repro.compression.vector_lz import (
    _reference_vector_lz_decode,
    vector_lz_decode,
    vector_lz_encode,
)
from repro.compression.entropy import EntropyCompressor
from repro.compression.vector_lz import VectorLZCompressor


class TestBitstreamDifferential:
    @given(
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=1, max_value=57),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_unpack_fixed_matches_reference(self, count, width, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 1 << width, size=count, dtype=np.uint64)
        packed, _ = pack_fixed(values, width)
        new = unpack_fixed(packed, count, width)
        ref = _reference_unpack_fixed(packed, count, width)
        np.testing.assert_array_equal(new, ref)
        np.testing.assert_array_equal(new, values)

    @given(
        st.integers(min_value=1, max_value=600),
        st.integers(min_value=1, max_value=25),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_sliding_windows_match_reference(self, nbytes, width, seed):
        rng = np.random.default_rng(seed)
        payload = rng.integers(0, 256, size=nbytes, dtype=np.uint8)
        padded = np.concatenate([payload, np.zeros(8, dtype=np.uint8)])
        count = nbytes * 8 - rng.integers(0, min(7, nbytes * 8 - 1))
        start = int(rng.integers(0, nbytes * 8 - count + 1))
        new = _sliding_windows(padded, start, int(count), width)
        ref = _reference_sliding_windows(padded, start, int(count), width)
        np.testing.assert_array_equal(new.astype(np.uint64), ref)


class TestVectorLZDifferential:
    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_decode_matches_reference(self, n, d, pool, window, seed):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, 2000, size=(pool, d))
        codes = rows[rng.integers(0, pool, size=n)]
        encoded = vector_lz_encode(codes, window=window)
        new = vector_lz_decode(encoded)
        ref = _reference_vector_lz_decode(encoded)
        np.testing.assert_array_equal(new, ref)
        np.testing.assert_array_equal(new, codes)

    def test_long_chain_all_identical_rows(self):
        """Chains as long as the batch (every row references the previous)."""
        codes = np.full((4096, 8), 7, dtype=np.int64)
        encoded = vector_lz_encode(codes, window=1)
        np.testing.assert_array_equal(vector_lz_decode(encoded), codes)
        np.testing.assert_array_equal(_reference_vector_lz_decode(encoded), codes)

    @given(st.floats(min_value=1e-4, max_value=1.0), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_codec_payload_roundtrip_any_bound(self, error_bound, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 0.2, size=(50, 8)).astype(np.float32)
        codec = VectorLZCompressor()
        payload = codec.compress(data, error_bound)
        rec = codec.decompress(payload)
        # One float32 ulp of slack: the ideal reconstruction is within the
        # bound, but rounding it to float32 can add up to half an ulp
        # (hypothesis found eb=1e-4 cases exceeding the bare bound by ~1e-9).
        tolerance = error_bound * (1 + 1e-5) + np.spacing(np.abs(rec).max())
        assert np.abs(data - rec).max() <= tolerance


class TestPackCodesDifferential:
    @given(
        st.integers(min_value=0, max_value=3000),
        st.integers(min_value=1, max_value=57),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_byte_identical_to_reference(self, count, max_len, seed):
        """The word-level packer must reproduce the per-bit-plane packer's
        stream bit for bit, over arbitrary code lengths up to 57."""
        rng = np.random.default_rng(seed)
        lengths = rng.integers(1, max_len + 1, size=count)
        codes = np.array(
            [rng.integers(0, 1 << int(l)) for l in lengths], dtype=np.uint64
        )
        new_packed, new_bits = pack_codes(codes, lengths)
        ref_packed, ref_bits = _reference_pack_codes(codes, lengths)
        assert new_bits == ref_bits
        np.testing.assert_array_equal(new_packed, ref_packed)

    def test_stray_high_bits_ignored_like_reference(self):
        """Only bits [length-1, 0] are emitted: value bits above the
        declared length must not leak into a neighbouring code."""
        codes = np.array([1, 0b111], dtype=np.uint64)  # second code: len 2, stray bit 2
        lengths = np.array([1, 2])
        new_packed, _ = pack_codes(codes, lengths)
        ref_packed, _ = _reference_pack_codes(codes, lengths)
        np.testing.assert_array_equal(new_packed, ref_packed)

    @given(st.integers(min_value=1, max_value=400), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_values_match_reference(self, count, seed):
        """Differential with unmasked 57-bit values at random lengths."""
        rng = np.random.default_rng(seed)
        lengths = rng.integers(1, 58, size=count)
        codes = rng.integers(0, 1 << 57, size=count, dtype=np.uint64)
        new_packed, new_bits = pack_codes(codes, lengths)
        ref_packed, ref_bits = _reference_pack_codes(codes, lengths)
        assert new_bits == ref_bits
        np.testing.assert_array_equal(new_packed, ref_packed)

    def test_empty(self):
        packed, bits = pack_codes(np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64))
        assert bits == 0 and packed.size == 0

    def test_rejects_out_of_range_lengths(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([1], dtype=np.uint64), np.array([58]))
        with pytest.raises(ValueError):
            pack_codes(np.array([1], dtype=np.uint64), np.array([0]))


class TestCodeLengthsDifferential:
    @given(
        st.lists(st.integers(min_value=1, max_value=100_000), min_size=1, max_size=300),
    )
    @settings(max_examples=60, deadline=None)
    def test_identical_to_heap_reference(self, freq_list):
        """The two-queue build matches the seed's heap tie-breaking
        exactly: identical length tables, not merely equivalent ones."""
        freqs = np.array(freq_list, dtype=np.int64)
        np.testing.assert_array_equal(
            huffman_code_lengths(freqs), _reference_huffman_code_lengths(freqs)
        )

    @given(st.integers(min_value=2, max_value=500), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_heavy_tie_distributions(self, n, seed):
        """Ties are where two-queue and heap could diverge; hammer them."""
        rng = np.random.default_rng(seed)
        freqs = rng.integers(1, 4, size=n)
        new = huffman_code_lengths(freqs)
        ref = _reference_huffman_code_lengths(freqs)
        np.testing.assert_array_equal(new, ref)
        assert np.isclose(np.sum(2.0 ** -new.astype(np.float64)), 1.0)

    def test_validation_matches_reference(self):
        for fn in (huffman_code_lengths, _reference_huffman_code_lengths):
            with pytest.raises(ValueError):
                fn(np.array([], dtype=np.int64))
            with pytest.raises(ValueError):
                fn(np.array([3, 0, 1]))
            np.testing.assert_array_equal(fn(np.array([7])), [1])


class TestHuffmanEncodeDifferential:
    @given(
        st.integers(min_value=0, max_value=4000),
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=8, max_value=1024),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_encode_matches_reference_stream(self, count, alphabet, chunk, seed):
        """Whole-encoder differential: payload, codebook, and chunk layout
        all byte-identical to the frozen seed path."""
        rng = np.random.default_rng(seed)
        raw = rng.zipf(1.4, size=count) - 1 if count else np.zeros(0, dtype=np.int64)
        symbols = np.minimum(raw, alphabet - 1).astype(np.int64)
        new = huffman_encode(symbols, alphabet, chunk_symbols=chunk)
        ref = _reference_huffman_encode(symbols, alphabet, chunk_symbols=chunk)
        np.testing.assert_array_equal(new.payload, ref.payload)
        np.testing.assert_array_equal(new.code_lengths, ref.code_lengths)
        np.testing.assert_array_equal(new.chunk_bit_offsets, ref.chunk_bit_offsets)
        np.testing.assert_array_equal(new.chunk_symbol_counts, ref.chunk_symbol_counts)
        np.testing.assert_array_equal(huffman_decode(new), symbols)


class TestHuffmanDifferential:
    @given(
        st.integers(min_value=0, max_value=4000),
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=8, max_value=1024),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_decode_matches_reference(self, count, alphabet, chunk, seed):
        rng = np.random.default_rng(seed)
        raw = rng.zipf(1.4, size=count) - 1 if count else np.zeros(0, dtype=np.int64)
        symbols = np.minimum(raw, alphabet - 1).astype(np.int64)
        encoded = huffman_encode(symbols, alphabet, chunk_symbols=chunk)
        new = huffman_decode(encoded)
        ref = _reference_huffman_decode(encoded)
        np.testing.assert_array_equal(new, ref)
        np.testing.assert_array_equal(new, symbols)

    def test_corrupt_stream_raises_like_reference(self):
        """A Kraft-gap peek must raise, not decode garbage."""
        rng = np.random.default_rng(3)
        symbols = rng.integers(0, 16, size=500)
        encoded = huffman_encode(symbols, 16)
        # Lengthen one code so the canonical table leaves a gap (Kraft < 1),
        # making some windows land on unassigned entries.
        lengths = encoded.code_lengths.copy()
        used = np.flatnonzero(lengths)
        lengths[used[0]] += 3
        from dataclasses import replace

        broken = replace(encoded, code_lengths=lengths)
        with pytest.raises(ValueError, match="corrupt"):
            huffman_decode(broken)
        with pytest.raises(ValueError, match="corrupt"):
            _reference_huffman_decode(broken)

    @given(st.floats(min_value=1e-4, max_value=1.0), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_codec_payload_roundtrip_any_bound(self, error_bound, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 0.2, size=(50, 8)).astype(np.float32)
        codec = EntropyCompressor()
        payload = codec.compress(data, error_bound)
        rec = codec.decompress(payload)
        # Same float32-ulp slack as the vector-LZ roundtrip above.
        tolerance = error_bound * (1 + 1e-5) + np.spacing(np.abs(rec).max())
        assert np.abs(data - rec).max() <= tolerance


class TestLz77Differential:
    @staticmethod
    def _make_data(rng, kind: str, size: int) -> bytes:
        if kind == "random":
            return rng.integers(0, 256, size).astype(np.uint8).tobytes()
        if kind == "low_entropy":
            return rng.integers(0, 4, size).astype(np.uint8).tobytes()
        if kind == "hot_rows":
            pool = rng.integers(0, 256, (8, 64)).astype(np.uint8)
            return pool[rng.integers(0, 8, max(size // 64, 1))].tobytes()
        return bytes(size)  # zeros

    @given(
        st.sampled_from(["random", "low_entropy", "hot_rows", "zeros"]),
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=1, max_value=70000),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_encode_byte_identical_and_decode_exact(self, kind, size, window, seed):
        rng = np.random.default_rng(seed)
        data = self._make_data(rng, kind, size)
        new_stream = lz77_encode_bytes(data, window)
        ref_stream = _reference_lz77_encode_bytes(data, window)
        assert new_stream == ref_stream
        assert lz77_decode_bytes(new_stream, len(data)) == data
        assert _reference_lz77_decode_bytes(new_stream, len(data)) == data

    def test_overlapping_match_copies(self):
        """Period-replication copy must equal the byte-at-a-time loop."""
        data = b"ab" * 4000 + b"xyz" + b"a" * 1000
        stream = lz77_encode_bytes(data, 4096)
        assert lz77_decode_bytes(stream, len(data)) == data
        assert _reference_lz77_decode_bytes(stream, len(data)) == data


class TestOracleEdgeCases:
    """Gap coverage against the frozen seed oracles: empty payloads,
    single-symbol alphabets, and the max-alphabet boundary."""

    def test_empty_huffman_payload_matches_reference(self):
        symbols = np.zeros(0, dtype=np.int64)
        new = huffman_encode(symbols, 1)
        ref = _reference_huffman_encode(symbols, 1)
        np.testing.assert_array_equal(new.payload, ref.payload)
        np.testing.assert_array_equal(new.code_lengths, ref.code_lengths)
        np.testing.assert_array_equal(new.chunk_bit_offsets, ref.chunk_bit_offsets)
        np.testing.assert_array_equal(new.chunk_symbol_counts, ref.chunk_symbol_counts)
        assert huffman_decode(new).size == 0
        assert _reference_huffman_decode(new).size == 0

    def test_empty_lz77_stream_matches_reference(self):
        new_stream = lz77_encode_bytes(b"", 64)
        ref_stream = _reference_lz77_encode_bytes(b"", 64)
        assert new_stream == ref_stream
        assert lz77_decode_bytes(new_stream, 0) == b""
        assert _reference_lz77_decode_bytes(ref_stream, 0) == b""

    def test_empty_vector_lz_batch_matches_reference(self):
        codes = np.zeros((0, 4), dtype=np.int64)
        encoded = vector_lz_encode(codes, window=8)
        np.testing.assert_array_equal(vector_lz_decode(encoded), codes)
        np.testing.assert_array_equal(_reference_vector_lz_decode(encoded), codes)

    def test_empty_bitplanes_match_reference(self):
        unsigned = np.zeros(0, dtype=np.uint64)
        new_bitmap, new_payload, new_blocks = pack_bitplanes(unsigned, 128)
        ref_bitmap, ref_payload, ref_blocks = _reference_pack_bitplanes(unsigned, 128)
        assert new_blocks == ref_blocks
        assert new_bitmap.tobytes() == ref_bitmap.tobytes()
        assert new_payload.tobytes() == ref_payload.tobytes()
        decoded = unpack_bitplanes(new_bitmap, new_payload, 0, 128, new_blocks)
        assert decoded.size == 0

    def test_single_symbol_alphabet_matches_reference(self):
        """A degenerate one-symbol alphabet (constant slice after
        quantization) must encode and decode identically on both paths."""
        symbols = np.zeros(257, dtype=np.int64)
        new = huffman_encode(symbols, 1)
        ref = _reference_huffman_encode(symbols, 1)
        np.testing.assert_array_equal(new.payload, ref.payload)
        np.testing.assert_array_equal(new.code_lengths, ref.code_lengths)
        np.testing.assert_array_equal(huffman_decode(new), symbols)
        np.testing.assert_array_equal(_reference_huffman_decode(new), symbols)

    def test_constant_batch_roundtrips_through_entropy_codec(self):
        data = np.full((16, 8), 0.25, dtype=np.float32)
        codec = EntropyCompressor()
        payload = codec.compress(data, 0.1)
        rec = codec.decompress(payload)
        assert np.abs(data - rec).max() <= 0.1 * (1 + 1e-6)

    def test_max_alphabet_boundary_symbols_match_reference(self):
        """Symbols spanning the full declared alphabet, including the top
        symbol ``alphabet - 1``, on both encoder paths."""
        alphabet = 4096
        rng = np.random.default_rng(11)
        symbols = np.concatenate(
            [np.array([0, alphabet - 1]), rng.integers(0, alphabet, size=500)]
        ).astype(np.int64)
        new = huffman_encode(symbols, alphabet)
        ref = _reference_huffman_encode(symbols, alphabet)
        np.testing.assert_array_equal(new.payload, ref.payload)
        np.testing.assert_array_equal(new.code_lengths, ref.code_lengths)
        np.testing.assert_array_equal(huffman_decode(new), symbols)
        np.testing.assert_array_equal(_reference_huffman_decode(new), symbols)

    def test_quantize_batch_max_alphabet_boundary(self):
        """Exactly at the cap passes; one past the cap fails fast."""
        from repro.compression.quantizer import quantize_batch

        m = 1024
        data = (np.arange(m, dtype=np.float32))[:, None]  # codes 0..m-1 at eb=0.5
        batch = quantize_batch(data, 0.5, max_alphabet=m)
        assert batch.alphabet_size == m
        with pytest.raises(ValueError, match="alphabet"):
            quantize_batch(data, 0.5, max_alphabet=m - 1)


class TestFzgpuDifferential:
    @given(
        st.integers(min_value=0, max_value=8000),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=512),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_bitplanes_byte_identical(self, n, bits, block_bytes, seed):
        rng = np.random.default_rng(seed)
        unsigned = rng.integers(0, 1 << bits, size=n).astype(np.uint64)
        new_bitmap, new_payload, new_blocks = pack_bitplanes(unsigned, block_bytes)
        ref_bitmap, ref_payload, ref_blocks = _reference_pack_bitplanes(unsigned, block_bytes)
        assert new_blocks == ref_blocks
        assert new_bitmap.tobytes() == ref_bitmap.tobytes()
        assert new_payload.tobytes() == ref_payload.tobytes()
        decoded = unpack_bitplanes(new_bitmap, new_payload, n, block_bytes, new_blocks)
        ref_decoded = _reference_unpack_bitplanes(
            new_bitmap, new_payload, n, block_bytes, new_blocks
        )
        np.testing.assert_array_equal(decoded, unsigned)
        np.testing.assert_array_equal(ref_decoded, unsigned)
