"""Differential tests: vectorized hot paths vs the frozen seed oracles.

The vectorization PR rewrote every per-element decode/search loop with
batched NumPy passes while keeping the original implementations as
``_reference_*`` functions.  These property tests pin the new code to the
old semantics: byte-identical encoded payloads, element-identical decodes,
and identical error behaviour, over randomized shapes, alphabets, windows,
and error bounds.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.baselines.fzgpu_like import (
    _reference_pack_bitplanes,
    _reference_unpack_bitplanes,
    pack_bitplanes,
    unpack_bitplanes,
)
from repro.compression.baselines.lz_generic import (
    _reference_lz77_decode_bytes,
    _reference_lz77_encode_bytes,
    lz77_decode_bytes,
    lz77_encode_bytes,
)
from repro.compression.bitstream import (
    _reference_unpack_fixed,
    pack_fixed,
    unpack_fixed,
)
from repro.compression.huffman import (
    _reference_huffman_decode,
    _reference_sliding_windows,
    _sliding_windows,
    huffman_decode,
    huffman_encode,
)
from repro.compression.vector_lz import (
    _reference_vector_lz_decode,
    vector_lz_decode,
    vector_lz_encode,
)
from repro.compression.entropy import EntropyCompressor
from repro.compression.vector_lz import VectorLZCompressor


class TestBitstreamDifferential:
    @given(
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=1, max_value=57),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_unpack_fixed_matches_reference(self, count, width, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 1 << width, size=count, dtype=np.uint64)
        packed, _ = pack_fixed(values, width)
        new = unpack_fixed(packed, count, width)
        ref = _reference_unpack_fixed(packed, count, width)
        np.testing.assert_array_equal(new, ref)
        np.testing.assert_array_equal(new, values)

    @given(
        st.integers(min_value=1, max_value=600),
        st.integers(min_value=1, max_value=25),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_sliding_windows_match_reference(self, nbytes, width, seed):
        rng = np.random.default_rng(seed)
        payload = rng.integers(0, 256, size=nbytes, dtype=np.uint8)
        padded = np.concatenate([payload, np.zeros(8, dtype=np.uint8)])
        count = nbytes * 8 - rng.integers(0, min(7, nbytes * 8 - 1))
        start = int(rng.integers(0, nbytes * 8 - count + 1))
        new = _sliding_windows(padded, start, int(count), width)
        ref = _reference_sliding_windows(padded, start, int(count), width)
        np.testing.assert_array_equal(new.astype(np.uint64), ref)


class TestVectorLZDifferential:
    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_decode_matches_reference(self, n, d, pool, window, seed):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, 2000, size=(pool, d))
        codes = rows[rng.integers(0, pool, size=n)]
        encoded = vector_lz_encode(codes, window=window)
        new = vector_lz_decode(encoded)
        ref = _reference_vector_lz_decode(encoded)
        np.testing.assert_array_equal(new, ref)
        np.testing.assert_array_equal(new, codes)

    def test_long_chain_all_identical_rows(self):
        """Chains as long as the batch (every row references the previous)."""
        codes = np.full((4096, 8), 7, dtype=np.int64)
        encoded = vector_lz_encode(codes, window=1)
        np.testing.assert_array_equal(vector_lz_decode(encoded), codes)
        np.testing.assert_array_equal(_reference_vector_lz_decode(encoded), codes)

    @given(st.floats(min_value=1e-4, max_value=1.0), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_codec_payload_roundtrip_any_bound(self, error_bound, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 0.2, size=(50, 8)).astype(np.float32)
        codec = VectorLZCompressor()
        payload = codec.compress(data, error_bound)
        rec = codec.decompress(payload)
        assert np.abs(data - rec).max() <= error_bound * (1 + 1e-5)


class TestHuffmanDifferential:
    @given(
        st.integers(min_value=0, max_value=4000),
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=8, max_value=1024),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_decode_matches_reference(self, count, alphabet, chunk, seed):
        rng = np.random.default_rng(seed)
        raw = rng.zipf(1.4, size=count) - 1 if count else np.zeros(0, dtype=np.int64)
        symbols = np.minimum(raw, alphabet - 1).astype(np.int64)
        encoded = huffman_encode(symbols, alphabet, chunk_symbols=chunk)
        new = huffman_decode(encoded)
        ref = _reference_huffman_decode(encoded)
        np.testing.assert_array_equal(new, ref)
        np.testing.assert_array_equal(new, symbols)

    def test_corrupt_stream_raises_like_reference(self):
        """A Kraft-gap peek must raise, not decode garbage."""
        rng = np.random.default_rng(3)
        symbols = rng.integers(0, 16, size=500)
        encoded = huffman_encode(symbols, 16)
        # Lengthen one code so the canonical table leaves a gap (Kraft < 1),
        # making some windows land on unassigned entries.
        lengths = encoded.code_lengths.copy()
        used = np.flatnonzero(lengths)
        lengths[used[0]] += 3
        from dataclasses import replace

        broken = replace(encoded, code_lengths=lengths)
        with pytest.raises(ValueError, match="corrupt"):
            huffman_decode(broken)
        with pytest.raises(ValueError, match="corrupt"):
            _reference_huffman_decode(broken)

    @given(st.floats(min_value=1e-4, max_value=1.0), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_codec_payload_roundtrip_any_bound(self, error_bound, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 0.2, size=(50, 8)).astype(np.float32)
        codec = EntropyCompressor()
        payload = codec.compress(data, error_bound)
        rec = codec.decompress(payload)
        assert np.abs(data - rec).max() <= error_bound * (1 + 1e-5)


class TestLz77Differential:
    @staticmethod
    def _make_data(rng, kind: str, size: int) -> bytes:
        if kind == "random":
            return rng.integers(0, 256, size).astype(np.uint8).tobytes()
        if kind == "low_entropy":
            return rng.integers(0, 4, size).astype(np.uint8).tobytes()
        if kind == "hot_rows":
            pool = rng.integers(0, 256, (8, 64)).astype(np.uint8)
            return pool[rng.integers(0, 8, max(size // 64, 1))].tobytes()
        return bytes(size)  # zeros

    @given(
        st.sampled_from(["random", "low_entropy", "hot_rows", "zeros"]),
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=1, max_value=70000),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_encode_byte_identical_and_decode_exact(self, kind, size, window, seed):
        rng = np.random.default_rng(seed)
        data = self._make_data(rng, kind, size)
        new_stream = lz77_encode_bytes(data, window)
        ref_stream = _reference_lz77_encode_bytes(data, window)
        assert new_stream == ref_stream
        assert lz77_decode_bytes(new_stream, len(data)) == data
        assert _reference_lz77_decode_bytes(new_stream, len(data)) == data

    def test_overlapping_match_copies(self):
        """Period-replication copy must equal the byte-at-a-time loop."""
        data = b"ab" * 4000 + b"xyz" + b"a" * 1000
        stream = lz77_encode_bytes(data, 4096)
        assert lz77_decode_bytes(stream, len(data)) == data
        assert _reference_lz77_decode_bytes(stream, len(data)) == data


class TestFzgpuDifferential:
    @given(
        st.integers(min_value=0, max_value=8000),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=512),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_bitplanes_byte_identical(self, n, bits, block_bytes, seed):
        rng = np.random.default_rng(seed)
        unsigned = rng.integers(0, 1 << bits, size=n).astype(np.uint64)
        new_bitmap, new_payload, new_blocks = pack_bitplanes(unsigned, block_bytes)
        ref_bitmap, ref_payload, ref_blocks = _reference_pack_bitplanes(unsigned, block_bytes)
        assert new_blocks == ref_blocks
        assert new_bitmap.tobytes() == ref_bitmap.tobytes()
        assert new_payload.tobytes() == ref_payload.tobytes()
        decoded = unpack_bitplanes(new_bitmap, new_payload, n, block_bytes, new_blocks)
        ref_decoded = _reference_unpack_bitplanes(
            new_bitmap, new_payload, n, block_bytes, new_blocks
        )
        np.testing.assert_array_equal(decoded, unsigned)
        np.testing.assert_array_equal(ref_decoded, unsigned)
