"""Edge-case sweep across every registered codec.

Production compressors meet degenerate inputs: empty batches at epoch
boundaries, single-row slices when batch >> ranks is violated, float64
tensors from accumulation buffers, and non-contiguous views.  Every codec
must handle all of them through the same contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import available_compressors, get_compressor

ERROR_BOUND = 0.01


def _roundtrip(name: str, array: np.ndarray) -> np.ndarray:
    codec = get_compressor(name)
    payload = codec.compress(array, ERROR_BOUND if codec.error_bounded else None)
    return codec.decompress(payload)


@pytest.mark.parametrize("name", available_compressors())
class TestDegenerateShapes:
    def test_single_row(self, name, rng):
        data = rng.normal(0, 0.1, size=(1, 16)).astype(np.float32)
        out = _roundtrip(name, data)
        assert out.shape == data.shape
        assert np.abs(data - out).max() < 0.25  # loosest codec is fp8/zfp

    def test_single_column(self, name, rng):
        data = rng.normal(0, 0.1, size=(32, 1)).astype(np.float32)
        out = _roundtrip(name, data)
        assert out.shape == data.shape

    def test_single_element(self, name):
        data = np.array([[0.125]], dtype=np.float32)
        out = _roundtrip(name, data)
        assert out.shape == (1, 1)
        assert abs(float(out[0, 0]) - 0.125) < 0.05

    def test_empty_batch(self, name):
        data = np.zeros((0, 8), dtype=np.float32)
        out = _roundtrip(name, data)
        assert out.shape == (0, 8)

    def test_all_zeros(self, name):
        data = np.zeros((16, 8), dtype=np.float32)
        out = _roundtrip(name, data)
        np.testing.assert_allclose(out, 0.0, atol=1e-12)

    def test_constant_nonzero(self, name):
        data = np.full((16, 8), 0.25, dtype=np.float32)
        out = _roundtrip(name, data)
        assert np.abs(data - out).max() < 0.05

    def test_float64_input_preserves_dtype(self, name, rng):
        data = rng.normal(0, 0.1, size=(8, 8))
        out = _roundtrip(name, data)
        assert out.dtype == np.float64
        assert out.shape == data.shape

    def test_non_contiguous_view(self, name, rng):
        base = rng.normal(0, 0.1, size=(32, 32)).astype(np.float32)
        view = base[::2, ::2]
        assert not view.flags["C_CONTIGUOUS"]
        out = _roundtrip(name, view)
        assert out.shape == view.shape

    def test_negative_values(self, name, rng):
        data = -np.abs(rng.normal(0, 0.1, size=(16, 8))).astype(np.float32)
        out = _roundtrip(name, data)
        lossless = name in ("lz4_like", "deflate_like")
        if lossless:
            np.testing.assert_array_equal(out, data)
        else:
            assert np.abs(data - out).max() < 0.05

    def test_1d_rejected(self, name):
        codec = get_compressor(name)
        with pytest.raises(ValueError):
            codec.compress(np.zeros(8, dtype=np.float32), ERROR_BOUND)

    def test_integer_dtype_rejected(self, name):
        codec = get_compressor(name)
        with pytest.raises(TypeError):
            codec.compress(np.zeros((4, 4), dtype=np.int32), ERROR_BOUND)


class TestExtremeValues:
    @pytest.mark.parametrize("name", ["hybrid", "vector_lz", "entropy", "cusz_like"])
    def test_large_magnitudes(self, name, rng):
        """Error-bounded codecs must hold the bound on large values too."""
        data = rng.normal(0, 100.0, size=(32, 8)).astype(np.float32)
        out = _roundtrip(name, data)
        slack = 8 * np.finfo(np.float32).eps * np.abs(data).max()
        assert np.abs(data - out).max() <= ERROR_BOUND + slack

    @pytest.mark.parametrize("name", ["hybrid", "entropy"])
    def test_tiny_magnitudes_collapse(self, name, rng):
        """Values far below the bound quantize to a single bin."""
        data = rng.normal(0, 1e-6, size=(256, 32)).astype(np.float32)
        codec = get_compressor(name)
        payload = codec.compress(data, ERROR_BOUND)
        # One code for the whole batch: the payload is header-sized only.
        assert len(payload) < data.nbytes / 50
        np.testing.assert_allclose(codec.decompress(payload), 0.0, atol=ERROR_BOUND)

    @pytest.mark.parametrize("name", available_compressors())
    def test_nan_rejected_or_roundtrips(self, name):
        """No codec may silently corrupt NaN input: either reject or (for
        the bit-exact lossless codecs) reproduce it."""
        data = np.array([[np.nan, 1.0, 2.0, 3.0]], dtype=np.float32)
        codec = get_compressor(name)
        try:
            payload = codec.compress(data, ERROR_BOUND if codec.error_bounded else None)
        except ValueError:
            return  # loud rejection: fine
        out = codec.decompress(payload)
        if name in ("lz4_like", "deflate_like", "fp16"):
            assert np.isnan(out[0, 0])
