"""Property laws of the homomorphic codec family.

The whole point of ``agg_sum`` is an algebra: payloads form a commutative
semigroup under aggregation, decode is a homomorphism onto (approximate)
elementwise sums, and the error bound composes in closed form.  Every one
of those claims is a Hypothesis law here — the same treatment the chunk
pipeline and BitstreamPool got:

* ``decode(agg_sum(e(a), e(b)))`` within the composed bound of ``a + b``
  (bit-exact for ``count_sum``, which must equal ``float32(fsum(...))``);
* ``agg_sum`` commutative and associative *at the byte level*;
* k-ary fold results independent of fold order and hop count (any fold
  tree yields identical payload bytes, hence identical decodes);
* the degenerate ``k = 1`` identity;
* ``quant_sum`` payloads refuse to aggregate across scales (the shared
  scale *is* the homomorphism) and compose ``terms * eb`` exactly.

Plus the ROADMAP 5b regression: pooled decompress scratch
(``decompress_into``) is byte-identical to ``decompress`` and can never
alias a previously returned array.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    agg_fold,
    agg_sum,
    composed_bound,
    get_compressor,
    homomorphic_codecs,
)
from repro.compression.base import parse_payload
from repro.compression.parallel import BitstreamPool

# Bounded so a fold of <= 8 leaves can never leave float32 range (inf is a
# representable-but-degenerate sum); subnormals and huge exponents are in.
finite32 = st.floats(
    min_value=-(2.0**100),
    max_value=2.0**100,
    allow_nan=False,
    allow_infinity=False,
    width=32,
)
finite64 = st.floats(
    min_value=-(2.0**600), max_value=2.0**600, allow_nan=False, allow_infinity=False
)
# quant_sum's codes live in int64: keep |x| / (2 eb) well inside that range
# (the codec *refuses* values beyond it, which its own test pins).
quantable32 = st.floats(
    min_value=-65536.0, max_value=65536.0, allow_nan=False, allow_infinity=False, width=32
)
bounds = st.floats(min_value=1e-4, max_value=1.0, allow_nan=False, allow_infinity=False)


@st.composite
def leaf_batch(draw, max_leaves: int = 6, elements=finite32, dtype=np.float32):
    rows = draw(st.integers(1, 3))
    cols = draw(st.integers(1, 4))
    k = draw(st.integers(2, max_leaves))
    size = rows * cols
    return [
        np.array(
            draw(st.lists(elements, min_size=size, max_size=size)), dtype=dtype
        ).reshape(rows, cols)
        for _ in range(k)
    ]


def _random_fold(payloads: list[bytes], seed: int) -> bytes:
    """Fold with a random binary tree: models an arbitrary hop graph."""
    rng = random.Random(seed)
    work = list(payloads)
    while len(work) > 1:
        i = rng.randrange(len(work))
        a = work.pop(i)
        j = rng.randrange(len(work))
        b = work.pop(j)
        work.append(agg_sum(a, b))
    return bytes(work[0])


def _fsum_total(leaves: list[np.ndarray]) -> np.ndarray:
    """Elementwise ``float32(fsum(...))`` — the correctly-rounded sum."""
    stacked = np.stack([leaf.astype(np.float64) for leaf in leaves])
    flat = stacked.reshape(len(leaves), -1)
    total = np.array(
        [math.fsum(flat[:, i].tolist()) for i in range(flat.shape[1])], dtype=np.float64
    )
    return total.reshape(leaves[0].shape).astype(np.float32)


def test_registry_exposes_both_codecs():
    assert homomorphic_codecs() == ("count_sum", "quant_sum")
    for name in homomorphic_codecs():
        assert getattr(get_compressor(name), "homomorphic", False)


class TestQuantSumLaws:
    """Shared-scale integer codes: exact composition of a lossy bound."""

    @settings(max_examples=60, deadline=None)
    @given(leaf_batch(max_leaves=2, elements=quantable32), bounds)
    def test_pairwise_within_composed_bound(self, leaves, eb):
        qs = get_compressor("quant_sum")
        a, b = leaves[0], leaves[1]
        payload = agg_sum(qs.compress(a, eb), qs.compress(b, eb))
        bound = composed_bound(payload)
        assert bound == pytest.approx(2 * eb)
        decoded = qs.decompress(payload).astype(np.float64)
        exact = a.astype(np.float64) + b.astype(np.float64)
        slack = 1e-9 * np.maximum(np.abs(exact), 1.0) + np.spacing(
            np.abs(exact).astype(np.float32), dtype=np.float32
        )
        assert np.all(np.abs(decoded - exact) <= bound + slack)

    @settings(max_examples=60, deadline=None)
    @given(leaf_batch(elements=quantable32), bounds, st.integers(0, 2**32))
    def test_fold_order_and_hop_count_independent(self, leaves, eb, seed):
        qs = get_compressor("quant_sum")
        payloads = [qs.compress(leaf, eb) for leaf in leaves]
        chain = agg_fold(payloads)
        tree = _random_fold(payloads, seed)
        reversed_chain = agg_fold(payloads[::-1])
        assert bytes(chain) == tree == bytes(reversed_chain)
        k = len(leaves)
        header, _ = parse_payload(chain)
        assert int(header["terms"]) == k
        assert composed_bound(chain) == pytest.approx(k * eb)
        decoded = qs.decompress(chain).astype(np.float64)
        exact = np.sum([leaf.astype(np.float64) for leaf in leaves], axis=0)
        slack = 1e-9 * np.maximum(np.abs(exact), 1.0) + np.spacing(
            np.abs(exact).astype(np.float32), dtype=np.float32
        )
        assert np.all(np.abs(decoded - exact) <= composed_bound(chain) + slack)

    @settings(max_examples=40, deadline=None)
    @given(leaf_batch(max_leaves=3, elements=quantable32), bounds)
    def test_commutative_and_associative_bytes(self, leaves, eb):
        qs = get_compressor("quant_sum")
        pa, pb = qs.compress(leaves[0], eb), qs.compress(leaves[1], eb)
        assert agg_sum(pa, pb) == agg_sum(pb, pa)
        if len(leaves) >= 3:
            pc = qs.compress(leaves[2], eb)
            assert agg_sum(agg_sum(pa, pb), pc) == agg_sum(pa, agg_sum(pb, pc))

    @settings(max_examples=40, deadline=None)
    @given(leaf_batch(max_leaves=2, elements=quantable32), bounds)
    def test_k1_identity(self, leaves, eb):
        qs = get_compressor("quant_sum")
        payload = qs.compress(leaves[0], eb)
        assert agg_fold([payload]) == bytes(payload)
        decoded = qs.decompress(payload).astype(np.float64)
        exact = leaves[0].astype(np.float64)
        slack = 1e-9 * np.maximum(np.abs(exact), 1.0) + np.spacing(
            np.abs(exact).astype(np.float32), dtype=np.float32
        )
        assert np.all(np.abs(decoded - exact) <= eb + slack)

    def test_scale_mismatch_refused(self):
        qs = get_compressor("quant_sum")
        table = np.ones((2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="scale"):
            agg_sum(qs.compress(table, 1e-3), qs.compress(table, 1e-2))

    def test_cross_codec_aggregation_refused(self):
        table = np.ones((2, 2), dtype=np.float32)
        qp = get_compressor("quant_sum").compress(table, 1e-3)
        cp = get_compressor("count_sum").compress(table)
        with pytest.raises(ValueError, match="codec"):
            agg_sum(qp, cp)
        with pytest.raises(ValueError, match="homomorphic"):
            agg_sum(get_compressor("fp16").compress(table), qp)


class TestCountSumLaws:
    """Lossless fixed-point accumulators: the strong (bitwise) laws."""

    @settings(max_examples=60, deadline=None)
    @given(leaf_batch(max_leaves=2))
    def test_pairwise_bit_exact(self, leaves):
        cs = get_compressor("count_sum")
        a, b = leaves[0], leaves[1]
        decoded = cs.decompress(agg_sum(cs.compress(a), cs.compress(b)))
        # float64 addition of two exactly-represented floats is correctly
        # rounded, so it equals the codec's exact-integer reconstruction.
        expected = (a.astype(np.float64) + b.astype(np.float64)).astype(np.float32)
        np.testing.assert_array_equal(decoded, expected)

    @settings(max_examples=60, deadline=None)
    @given(leaf_batch(), st.integers(0, 2**32))
    def test_fold_any_order_equals_fsum(self, leaves, seed):
        cs = get_compressor("count_sum")
        payloads = [cs.compress(leaf) for leaf in leaves]
        chain = agg_fold(payloads)
        assert bytes(chain) == _random_fold(payloads, seed)
        assert bytes(chain) == bytes(agg_fold(payloads[::-1]))
        assert composed_bound(chain) == 0.0
        np.testing.assert_array_equal(cs.decompress(chain), _fsum_total(leaves))

    @settings(max_examples=40, deadline=None)
    @given(leaf_batch(max_leaves=3))
    def test_commutative_and_associative_bytes(self, leaves):
        cs = get_compressor("count_sum")
        pa, pb = cs.compress(leaves[0]), cs.compress(leaves[1])
        assert agg_sum(pa, pb) == agg_sum(pb, pa)
        if len(leaves) >= 3:
            pc = cs.compress(leaves[2])
            assert agg_sum(agg_sum(pa, pb), pc) == agg_sum(pa, agg_sum(pb, pc))

    @settings(max_examples=60, deadline=None)
    @given(leaf_batch(max_leaves=2))
    def test_roundtrip_identity_bit_exact(self, leaves):
        cs = get_compressor("count_sum")
        payload = cs.compress(leaves[0])
        assert agg_fold([payload]) == bytes(payload)
        np.testing.assert_array_equal(cs.decompress(payload), leaves[0])

    @settings(max_examples=30, deadline=None)
    @given(leaf_batch(max_leaves=4, elements=finite64, dtype=np.float64))
    def test_float64_grid_exact(self, leaves):
        cs = get_compressor("count_sum")
        chain = agg_fold([cs.compress(leaf) for leaf in leaves])
        flat = np.stack(leaves).reshape(len(leaves), -1)
        expected = np.array(
            [math.fsum(flat[:, i].tolist()) for i in range(flat.shape[1])]
        ).reshape(leaves[0].shape)
        np.testing.assert_array_equal(cs.decompress(chain), expected)

    def test_aggregating_zero_windows(self):
        cs = get_compressor("count_sum")
        zeros = np.zeros((3, 2), dtype=np.float32)
        table = np.full((3, 2), 0.75, dtype=np.float32)
        for payload in (
            agg_sum(cs.compress(zeros), cs.compress(table)),
            agg_sum(cs.compress(table), cs.compress(zeros)),
            agg_sum(cs.compress(zeros), cs.compress(zeros)),
        ):
            decoded = cs.decompress(payload)
            assert decoded.shape == (3, 2)
        np.testing.assert_array_equal(
            cs.decompress(agg_sum(cs.compress(zeros), cs.compress(table))), table
        )


class TestPooledDecode:
    """ROADMAP 5b (scoped): decode output comes from BitstreamPool leases,
    byte-identical to the allocating path and never aliasing."""

    @pytest.mark.parametrize("codec", sorted(homomorphic_codecs()))
    def test_pooled_decode_byte_identical(self, codec):
        compressor = get_compressor(codec)
        rng = np.random.default_rng(11)
        table = np.asarray(rng.normal(0.0, 2.0, size=(9, 7)), dtype=np.float32)
        eb = 1e-3 if compressor.error_bounded else None
        payload = compressor.compress(table, eb)
        pool = BitstreamPool()
        lease, out = compressor.decompress_into(payload, pool=pool)
        np.testing.assert_array_equal(out, compressor.decompress(payload))
        del out
        lease.release()
        assert pool.stats.live == 0
        assert pool.stats.dirty_releases == 0

    def test_no_aliasing_across_sequential_decodes(self):
        """A recycled arena must never rewrite a previously copied result,
        and a *surviving* array must never be written under (the dirty
        release drops the arena instead of recycling it)."""
        cs = get_compressor("count_sum")
        rng = np.random.default_rng(5)
        a = np.asarray(rng.normal(size=(6, 6)), dtype=np.float32)
        b = np.asarray(rng.normal(size=(6, 6)), dtype=np.float32)
        pool = BitstreamPool()

        # Clean reuse: copy out, drop the view, release -> arena recycled.
        lease_a, out_a = cs.decompress_into(cs.compress(a), pool=pool)
        copied = out_a.copy()
        del out_a
        lease_a.release()
        created = pool.stats.arenas_created
        lease_b, out_b = cs.decompress_into(cs.compress(b), pool=pool)
        assert pool.stats.arenas_created == created  # recycled, not fresh
        np.testing.assert_array_equal(copied, a)  # reuse wrote elsewhere
        np.testing.assert_array_equal(out_b, b)

        # Dirty release: keep the array alive across release -> the arena
        # is dropped and a later decode can never write under it.
        lease_b.release()
        assert pool.stats.dirty_releases >= 1
        lease_c, out_c = cs.decompress_into(cs.compress(a), pool=pool)
        np.testing.assert_array_equal(out_b, b)  # survivor untouched
        np.testing.assert_array_equal(out_c, a)
        del out_c
        lease_c.release()
