"""Tests for error-bounded linear-scaling quantization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression.quantizer import dequantize, quantize, quantize_batch


class TestQuantize:
    def test_zero_maps_to_zero(self):
        np.testing.assert_array_equal(quantize(np.zeros(5, np.float32), 0.01), np.zeros(5))

    def test_bin_width_is_twice_bound(self):
        # Values exactly one bin apart differ by one code.
        eb = 0.05
        codes = quantize(np.array([0.0, 2 * eb, 4 * eb]), eb)
        np.testing.assert_array_equal(codes, [0, 1, 2])

    def test_error_bound_holds(self):
        rng = np.random.default_rng(3)
        data = rng.normal(0, 1, size=1000).astype(np.float32)
        for eb in (0.5, 0.01, 1e-4):
            rec = dequantize(quantize(data, eb), eb)
            assert np.abs(data.astype(np.float64) - rec).max() <= eb * (1 + 1e-6)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            quantize(np.array([1.0, np.nan]), 0.01)

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN/inf"):
            quantize(np.array([np.inf]), 0.01)

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            quantize(np.zeros(3), 0.0)
        with pytest.raises(ValueError):
            quantize(np.zeros(3), -0.1)

    def test_negative_values(self):
        codes = quantize(np.array([-0.1, -0.02, 0.02, 0.1]), 0.01)
        assert codes[0] < 0 < codes[3]
        rec = dequantize(codes, 0.01)
        assert np.abs(np.array([-0.1, -0.02, 0.02, 0.1]) - rec).max() <= 0.01 + 1e-9

    @given(
        hnp.arrays(
            np.float32,
            st.integers(min_value=1, max_value=64),
            elements=st.floats(-1e4, 1e4, width=32),
        ),
        st.floats(min_value=1e-4, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_bound_property(self, data, eb):
        rec = dequantize(quantize(data, eb), eb, dtype=np.float64)
        slack = 4 * np.finfo(np.float32).eps * max(1.0, float(np.abs(data).max()))
        assert np.abs(data.astype(np.float64) - rec).max() <= eb + slack

    def test_coarser_bound_never_more_codes(self):
        """Monotonicity: larger error bound -> no more distinct codes."""
        rng = np.random.default_rng(11)
        data = rng.normal(0, 0.2, size=2048).astype(np.float32)
        uniques = [
            np.unique(quantize(data, eb)).size for eb in (0.001, 0.01, 0.1, 1.0)
        ]
        assert uniques == sorted(uniques, reverse=True)


class TestQuantizedBatch:
    def test_codes_are_nonnegative(self, gaussian_batch):
        batch = quantize_batch(gaussian_batch, 0.01)
        assert batch.codes.min() >= 0

    def test_reconstruct_roundtrip(self, gaussian_batch):
        batch = quantize_batch(gaussian_batch, 0.01)
        rec = batch.reconstruct()
        assert rec.shape == gaussian_batch.shape
        assert rec.dtype == gaussian_batch.dtype
        assert np.abs(gaussian_batch - rec).max() <= 0.01 + 1e-6

    def test_alphabet_size(self):
        data = np.array([[0.0, 0.1, 0.2]], dtype=np.float32)
        batch = quantize_batch(data, 0.05)
        # codes 0, 1, 2 -> alphabet of 3
        assert batch.alphabet_size == 3

    def test_empty_like_row(self):
        data = np.zeros((1, 4), dtype=np.float32)
        batch = quantize_batch(data, 0.01)
        assert batch.alphabet_size == 1
        np.testing.assert_array_equal(batch.reconstruct(), data)

    def test_preserves_float64(self):
        data = np.random.default_rng(0).normal(size=(4, 4))
        batch = quantize_batch(data, 0.01)
        assert batch.reconstruct().dtype == np.float64


class TestAlphabetCap:
    def test_tiny_bound_raises_with_alphabet_size_in_message(self):
        from repro.compression.quantizer import DEFAULT_MAX_ALPHABET

        data = np.array([[0.0, 1.0]], dtype=np.float32)
        with pytest.raises(ValueError, match="alphabet"):
            quantize_batch(data, 1e-9)
        try:
            quantize_batch(data, 1e-9)
        except ValueError as err:
            message = str(err)
            assert str(DEFAULT_MAX_ALPHABET) in message
            # the offending alphabet size: range 1.0 / bin 2e-9 -> 5e8 symbols
            assert "500000001" in message

    def test_cap_is_overridable(self):
        data = np.array([[0.0, 1.0]], dtype=np.float32)
        batch = quantize_batch(data, 1e-7, max_alphabet=10_000_001)
        assert batch.alphabet_size == 5_000_001

    def test_boundary_exactly_at_cap_passes(self):
        data = np.array([[0.0, 1.0]], dtype=np.float32)
        batch = quantize_batch(data, 0.5, max_alphabet=2)
        assert batch.alphabet_size <= 2

    def test_default_cap_leaves_normal_bounds_alone(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 0.1, size=(64, 16)).astype(np.float32)
        batch = quantize_batch(data, 1e-6)  # tight but sane
        assert batch.alphabet_size < 2_000_000

    def test_vector_lz_still_accepts_tight_bounds(self):
        """The cap guards the entropy leg; vector-LZ packs literals at a
        fixed width and must keep its pre-cap tolerance of huge alphabets."""
        from repro.compression import VectorLZCompressor

        rng = np.random.default_rng(1)
        data = rng.uniform(0.0, 1.0, size=(8, 4)).astype(np.float32)
        codec = VectorLZCompressor()
        payload = codec.compress(data, 1e-8)  # ~5e7 bins
        rec = codec.decompress(payload)
        # Bound holds to within one float32 ULP (the documented contract).
        assert np.abs(data - rec).max() <= 1e-8 + np.finfo(np.float32).eps

    def test_huffman_fails_fast_on_oversized_used_alphabet(self):
        """More distinct symbols than 15-bit codes allow must raise before
        the tree build, with an actionable message."""
        from repro.compression.huffman import huffman_encode

        symbols = np.arange(40_000, dtype=np.int64)
        with pytest.raises(ValueError, match="loosen the error bound"):
            huffman_encode(symbols, 40_000)
