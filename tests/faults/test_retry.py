"""RetryPolicy: deterministic jittered backoff on the simulated clock."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import RetryOutcome, RetryPolicy


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        """The satellite invariant: one seed -> one backoff schedule."""
        a = RetryPolicy(max_attempts=5, seed=11)
        b = RetryPolicy(max_attempts=5, seed=11)
        for attempt in range(5):
            assert a.backoff_seconds(attempt, "publish", 3) == b.backoff_seconds(
                attempt, "publish", 3
            )

    def test_different_seed_different_schedule(self):
        a = RetryPolicy(max_attempts=5, seed=11)
        b = RetryPolicy(max_attempts=5, seed=12)
        schedule_a = [a.backoff_seconds(i, "k") for i in range(1, 5)]
        schedule_b = [b.backoff_seconds(i, "k") for i in range(1, 5)]
        assert schedule_a != schedule_b

    def test_distinct_keys_jitter_independently(self):
        policy = RetryPolicy(max_attempts=4, seed=0)
        assert policy.backoff_seconds(2, "pull", 0, 1) != policy.backoff_seconds(
            2, "pull", 0, 2
        )

    def test_total_backoff_matches_sum(self):
        policy = RetryPolicy(max_attempts=4, seed=3)
        total = sum(policy.backoff_seconds(i, "op") for i in range(1, 4))
        assert policy.total_backoff_seconds("op") == pytest.approx(total)


class TestSchedule:
    def test_attempt_zero_never_waits(self):
        assert RetryPolicy(seed=5).backoff_seconds(0, "x") == 0.0

    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5,
            base_backoff_seconds=0.001,
            backoff_factor=2.0,
            max_backoff_seconds=1.0,
            jitter_fraction=0.0,
        )
        waits = [policy.backoff_seconds(i) for i in range(1, 5)]
        assert waits == [0.001, 0.002, 0.004, 0.008]

    def test_cap_applies(self):
        policy = RetryPolicy(
            max_attempts=10,
            base_backoff_seconds=0.01,
            backoff_factor=10.0,
            max_backoff_seconds=0.05,
            jitter_fraction=0.0,
        )
        assert policy.backoff_seconds(9) == 0.05

    @settings(deadline=None, max_examples=40)
    @given(
        attempt=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_jitter_stays_within_fraction(self, attempt, seed):
        policy = RetryPolicy(
            max_attempts=9,
            base_backoff_seconds=0.002,
            max_backoff_seconds=0.1,
            jitter_fraction=0.25,
            seed=seed,
        )
        nominal = min(0.002 * 2.0 ** (attempt - 1), 0.1)
        wait = policy.backoff_seconds(attempt, "hyp")
        assert 0.75 * nominal <= wait <= 1.25 * nominal

    def test_allows_is_bounded_by_max_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert [policy.allows(i) for i in range(-1, 4)] == [
            False,
            True,
            True,
            True,
            False,
        ]


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"timeout_seconds": 0.0},
            {"backoff_factor": 0.5},
            {"jitter_fraction": 1.0},
            {"base_backoff_seconds": -1e-3},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_policy_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            RetryPolicy().max_attempts = 5

    def test_outcome_validation(self):
        RetryOutcome(succeeded=True, attempts=1, backoff_seconds=0.0, wasted_seconds=0.0)
        with pytest.raises(ValueError):
            RetryOutcome(succeeded=True, attempts=0, backoff_seconds=0.0, wasted_seconds=0.0)
        with pytest.raises(ValueError):
            RetryOutcome(succeeded=True, attempts=1, backoff_seconds=-1.0, wasted_seconds=0.0)
