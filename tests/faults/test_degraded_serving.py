"""ServingSimulator under faults: retries, breakers, stale fallback, and
the no-silent-degradation accounting invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import SyntheticClickDataset, make_uniform_spec
from repro.faults import FaultInjector, FaultPlan, RetryPolicy, ShardCrashFault
from repro.model import DLRM, DLRMConfig
from repro.serve import (
    EmbeddingShardServer,
    InferenceReplica,
    RequestLoadGenerator,
    ServingSimulator,
)
from repro.train.sharding import ShardingPlan

N_TABLES = 6
ROWS = 300
QPS = 2000.0


@pytest.fixture(scope="module")
def world():
    spec = make_uniform_spec(
        "faults-serve", n_tables=N_TABLES, cardinality=ROWS, zipf_exponent=1.4
    )
    dataset = SyntheticClickDataset(spec, seed=61)
    config = DLRMConfig.from_dataset(spec, embedding_dim=8, seed=62)
    model = DLRM(config)
    return dataset, config, model


def build_replicas(model, cache_rows=256, n_replicas=2, keep_stale=False):
    sharding = ShardingPlan.round_robin(N_TABLES, 2)
    servers = [
        EmbeddingShardServer.from_model(
            model, sharding.tables_of(rank), error_bound=1e-2, rows_per_block=32
        )
        for rank in range(2)
    ]
    return [
        InferenceReplica(i, servers, sharding, cache_rows, keep_stale=keep_stale)
        for i in range(n_replicas)
    ]


def run_faulty(world, crashes, *, n_requests=150, max_attempts=2, timeout=0.005,
               cache_rows=256, keep_stale=False, hedge_delay=None):
    dataset, config, model = world
    replicas = build_replicas(model, cache_rows=cache_rows, keep_stale=keep_stale)
    injector = FaultInjector(FaultPlan(shard_crashes=tuple(crashes)), seed=1)
    sim = ServingSimulator(
        replicas,
        config,
        fault_injector=injector,
        retry_policy=RetryPolicy(
            max_attempts=max_attempts, timeout_seconds=timeout, seed=1
        ),
        hedge_delay=hedge_delay,
        breaker_reset_seconds=0.01,
    )
    requests = RequestLoadGenerator(dataset, qps=QPS, seed=9).generate(n_requests)
    return sim.run(requests)


class TestHealthyEquivalence:
    def test_no_injector_path_is_untouched(self, world):
        """Without fault kwargs the report matches the pre-fault baseline
        shape: zero retries/timeouts/degradations, and two identical runs
        agree exactly."""
        dataset, config, model = world
        reports = []
        for _ in range(2):
            replicas = build_replicas(model)
            sim = ServingSimulator(replicas, config)
            requests = RequestLoadGenerator(dataset, qps=QPS, seed=9).generate(100)
            reports.append(sim.run(requests))
        a, b = reports
        assert a == b
        assert a.impaired_requests == 0
        assert a.pull_retries == a.pull_timeouts == a.breaker_fast_fails == 0
        assert a.stale_rows == a.degraded_rows == 0
        assert a.fresh_requests == a.n_requests

    def test_faulty_path_with_empty_plan_serves_everything_fresh(self, world):
        report = run_faulty(world, [])
        assert report.impaired_requests == 0
        assert report.stale_rows == report.degraded_rows == 0
        assert report.pull_timeouts == report.breaker_fast_fails == 0
        assert report.fresh_requests == report.n_requests


class TestCrashedShard:
    def test_permanent_crash_degrades_but_answers(self, world):
        """Shard 0 down the whole trace: every request still completes,
        misses on shard-0 tables degrade, and the breaker converts the
        steady state into fast-fails instead of timeout queues."""
        report = run_faulty(
            world, [ShardCrashFault(shard_rank=0, start=0.0, duration=1e6)],
            cache_rows=0,  # every lookup must pull
        )
        assert report.n_requests == report.fresh_requests + report.impaired_requests
        assert report.impaired_requests == report.n_requests  # shard 0 owns 3 tables
        assert report.degraded_rows > 0
        assert report.pull_timeouts > 0
        assert report.breaker_fast_fails > 0
        assert report.breaker_fast_fails > report.pull_timeouts  # fail-fast dominates

    def test_short_crash_recovers_via_retries(self, world):
        """A crash shorter than the retry budget: requests ride it out
        with retries and nothing is silently degraded."""
        report = run_faulty(
            world,
            [ShardCrashFault(shard_rank=0, start=0.0, duration=0.004)],
            max_attempts=3,
            timeout=0.005,
        )
        assert report.pull_retries + report.pull_timeouts > 0
        assert report.n_requests == report.fresh_requests + report.impaired_requests

    def test_stale_fallback_served_from_pre_publication_copy(self, world):
        """keep_stale replicas answer a crashed shard from the displaced
        copy — counted stale, not silently fresh, and numerically equal to
        what the cache held before invalidation."""
        dataset, config, model = world
        replicas = build_replicas(model, keep_stale=True)
        replica = replicas[0]
        shard0_tables = [t for t in range(N_TABLES) if replica.sharding.owner_of(t) == 0]
        # Warm the cache, then invalidate (as a delta publication would).
        row_id = 7
        warmed = {}
        for t in shard0_tables:
            pull = replica.servers[0].pull(t, np.array([row_id], dtype=np.int64))
            replica.admit_row(t, row_id, pull.rows[0])
            warmed[t] = pull.rows[0].copy()
        assert replica.invalidate_tables(shard0_tables) == len(shard0_tables)
        for t in shard0_tables:
            stale = replica.stale_lookup(t, row_id)
            assert stale is not None
            assert np.array_equal(stale, warmed[t])
        assert replica.stale_lookup(shard0_tables[0], row_id + 1) is None

    def test_hedged_pulls_fire_when_primary_is_slow(self, world):
        report = run_faulty(world, [], hedge_delay=1e-9, cache_rows=0)
        assert report.hedged_pulls > 0
        assert report.impaired_requests == 0


class TestAccountingInvariants:
    @settings(deadline=None, max_examples=12)
    @given(
        start=st.floats(min_value=0.0, max_value=0.05),
        duration=st.floats(min_value=1e-4, max_value=0.2),
        shard=st.integers(min_value=0, max_value=1),
    )
    def test_no_silent_degradation_under_any_outage_window(
        self, world, start, duration, shard
    ):
        """Hypothesis sweep: whatever the crash window, every request is
        accounted fresh xor impaired, degraded/stale rows appear only on
        impaired requests, and determinism holds per window."""
        crashes = [ShardCrashFault(shard_rank=shard, start=start, duration=duration)]
        report = run_faulty(world, crashes)
        assert report.n_requests == report.fresh_requests + report.impaired_requests
        if report.impaired_requests == 0:
            assert report.stale_rows == report.degraded_rows == 0
        else:
            assert report.stale_rows + report.degraded_rows > 0
        assert report.stale_requests <= report.impaired_requests
        assert report.degraded_requests <= report.impaired_requests
        assert run_faulty(world, crashes) == report  # deterministic replay
