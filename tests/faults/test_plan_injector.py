"""FaultPlan queries and FaultInjector behavior against the simulator."""

from __future__ import annotations

import pytest

from repro.compression import CorruptPayloadError, frame_with_checksum, verify_checksum_frame
from repro.dist import ClusterSimulator
from repro.dist.timeline import COMM_STREAM, COMPUTE_STREAM, OBS_STREAM, EventCategory, Timeline
from repro.faults import (
    CorruptionFault,
    FaultInjector,
    FaultPlan,
    LinkFault,
    RankFailureFault,
    ShardCrashFault,
    StragglerFault,
)


class TestLinkFault:
    def test_window_and_matching(self):
        fault = LinkFault(start=1.0, duration=0.5, src=0, dst=1)
        assert fault.active(1.0) and fault.active(1.49)
        assert not fault.active(0.99) and not fault.active(1.5)
        assert fault.matches(0, 1)
        assert fault.matches(1, 0)  # symmetric by default
        assert not fault.matches(0, 2)

    def test_asymmetric_and_wildcard(self):
        one_way = LinkFault(start=0, duration=1, src=0, dst=1, symmetric=False)
        assert one_way.matches(0, 1) and not one_way.matches(1, 0)
        fabric_wide = LinkFault(start=0, duration=1, outage=True)
        assert fabric_wide.matches(3, 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkFault(start=-1, duration=1)
        with pytest.raises(ValueError):
            LinkFault(start=0, duration=0)
        with pytest.raises(ValueError):
            LinkFault(start=0, duration=1, bandwidth_factor=0.0)
        with pytest.raises(ValueError):
            StragglerFault(rank=0, start=0, duration=1, slowdown=0.5)


class TestPlanQueries:
    def test_link_state_worst_case_over_matches(self):
        plan = FaultPlan(
            links=(
                LinkFault(start=0, duration=1, src=0, dst=1, bandwidth_factor=0.5),
                LinkFault(start=0, duration=1, src=0, dst=1, extra_latency=1e-4),
            )
        )
        state = plan.link_state(0, 1, 0.5)
        assert state.up
        assert state.bandwidth_factor == 0.5
        assert state.extra_latency == 1e-4
        assert plan.link_state(0, 1, 2.0).bandwidth_factor == 1.0

    def test_outage_takes_link_down(self):
        plan = FaultPlan(links=(LinkFault(start=0, duration=1, src=0, dst=1, outage=True),))
        assert not plan.link_state(0, 1, 0.5).up
        assert plan.link_state(0, 2, 0.5).up

    def test_wire_slowdown_is_worst_active_degradation(self):
        plan = FaultPlan(
            links=(
                LinkFault(start=0, duration=1, bandwidth_factor=0.25),
                LinkFault(start=0, duration=1, bandwidth_factor=0.5),
            )
        )
        assert plan.wire_slowdown(0.5) == 4.0
        assert plan.wire_slowdown(1.5) == 1.0

    def test_wire_available_at_skips_chained_outages(self):
        plan = FaultPlan(
            links=(
                LinkFault(start=0.0, duration=1.0, outage=True),
                LinkFault(start=0.9, duration=1.0, outage=True),
            )
        )
        assert plan.wire_available_at(0.5) == pytest.approx(1.9)
        assert plan.wire_available_at(2.0) == 2.0

    def test_compute_slowdown_and_shard_down(self):
        plan = FaultPlan(
            stragglers=(StragglerFault(rank=1, start=0, duration=1, slowdown=3.0),),
            shard_crashes=(ShardCrashFault(shard_rank=0, start=2, duration=1),),
        )
        assert plan.compute_slowdown(1, 0.5) == 3.0
        assert plan.compute_slowdown(0, 0.5) == 1.0
        assert plan.shard_down(0, 2.5) and not plan.shard_down(0, 3.5)
        assert not plan.shard_down(1, 2.5)

    def test_corrupts_and_rank_failure(self):
        plan = FaultPlan(
            corruptions=(CorruptionFault(round_index=2, table_index=1, attempt=0),),
            rank_failures=(RankFailureFault(rank=1, at_iteration=5),),
        )
        assert plan.corrupts(2, 1, 0)
        assert not plan.corrupts(2, 1, 1)  # retry attempt is clean
        assert plan.rank_failure_at(5).rank == 1
        assert plan.rank_failure_at(4) is None

    def test_bool_and_n_faults(self):
        assert not FaultPlan()
        plan = FaultPlan(stragglers=(StragglerFault(rank=0, start=0, duration=1, slowdown=2),))
        assert plan and plan.n_faults == 1


class TestRandomPlan:
    def test_same_seed_same_plan(self):
        kwargs = dict(
            horizon_seconds=1.0, n_ranks=4, n_shards=2, n_iterations=8, n_rank_failures=1
        )
        assert FaultPlan.random(9, **kwargs) == FaultPlan.random(9, **kwargs)
        assert FaultPlan.random(9, **kwargs) != FaultPlan.random(10, **kwargs)

    def test_shapes_respected(self):
        plan = FaultPlan.random(
            3,
            horizon_seconds=2.0,
            n_ranks=4,
            n_shards=2,
            n_iterations=6,
            n_link_faults=3,
            n_stragglers=2,
            n_shard_crashes=2,
            n_corruptions=2,
            n_rank_failures=1,
        )
        assert len(plan.links) == 3
        assert len(plan.stragglers) == 2
        assert len(plan.shard_crashes) == 2
        assert len(plan.corruptions) == 2
        assert len(plan.rank_failures) == 1
        for crash in plan.shard_crashes:
            assert crash.shard_rank in (0, 1)


class TestInjectorAdjustments:
    def test_straggler_stretches_compute_only(self):
        plan = FaultPlan(stragglers=(StragglerFault(rank=1, start=0, duration=10, slowdown=2.0),))
        injector = FaultInjector(plan)
        start, seconds = injector.adjust_stream_event(1, COMPUTE_STREAM, 1.0, 0.5)
        assert (start, seconds) == (1.0, 1.0)
        assert injector.adjust_stream_event(0, COMPUTE_STREAM, 1.0, 0.5) == (1.0, 0.5)
        assert injector.adjust_stream_event(1, COMM_STREAM, 1.0, 0.5) == (1.0, 0.5)
        assert injector.injected["straggler"] == 1

    def test_outage_delays_comm_then_degradation_stretches(self):
        plan = FaultPlan(
            links=(
                LinkFault(start=0.0, duration=1.0, outage=True),
                LinkFault(start=1.0, duration=1.0, bandwidth_factor=0.5),
            )
        )
        injector = FaultInjector(plan)
        start, seconds = injector.adjust_stream_event(0, COMM_STREAM, 0.5, 0.1)
        assert start == pytest.approx(1.0)  # waited out the outage
        assert seconds == pytest.approx(0.2)  # then the degraded link bites
        start, seconds = injector.adjust_collective(0.5, 0.1)
        assert (start, seconds) == (pytest.approx(1.0), pytest.approx(0.2))

    def test_injector_delays_simulator_makespan(self):
        plan = FaultPlan(stragglers=(StragglerFault(rank=0, start=0, duration=10, slowdown=4.0),))
        healthy = ClusterSimulator(2)
        healthy.compute(0, 0.01, EventCategory.BOTTOM_MLP_FWD)
        faulty = ClusterSimulator(2)
        faulty.fault_injector = FaultInjector(plan)
        faulty.compute(0, 0.01, EventCategory.BOTTOM_MLP_FWD)
        assert faulty.makespan() == pytest.approx(4 * healthy.makespan())

    def test_empty_plan_is_a_no_op(self):
        injector = FaultInjector(FaultPlan())
        assert injector.adjust_stream_event(0, COMM_STREAM, 1.0, 0.5) == (1.0, 0.5)
        assert injector.adjust_collective(1.0, 0.5) == (1.0, 0.5)
        assert injector.injected == {}


class TestCorruption:
    def test_corrupt_payload_is_deterministic_and_detected(self):
        injector = FaultInjector(FaultPlan(), seed=4)
        framed = frame_with_checksum(b"embedding delta payload bytes")
        damaged = injector.corrupt_payload(framed, "pub", 0, 1)
        assert damaged != framed
        assert damaged == FaultInjector(FaultPlan(), seed=4).corrupt_payload(framed, "pub", 0, 1)
        assert damaged[:5] == framed[:5]  # envelope prefix untouched
        with pytest.raises(CorruptPayloadError):
            verify_checksum_frame(damaged)
        assert verify_checksum_frame(framed) == b"embedding delta payload bytes"

    def test_empty_payload_rejected_short_payload_still_damaged(self):
        injector = FaultInjector(FaultPlan())
        with pytest.raises(ValueError):
            injector.corrupt_payload(b"")
        # shorter than the envelope prefix: flips land past a clamped offset
        assert injector.corrupt_payload(b"abc") != b"abc"


class TestAnnotate:
    def test_fault_spans_land_on_obs_lane_without_time_cost(self):
        plan = FaultPlan(
            links=(LinkFault(start=0.0, duration=0.5, outage=True),),
            stragglers=(StragglerFault(rank=1, start=0.1, duration=0.2, slowdown=2.0),),
            shard_crashes=(ShardCrashFault(shard_rank=0, start=0.3, duration=0.1),),
        )
        timeline = Timeline()
        timeline.record(0, EventCategory.BOTTOM_MLP_FWD, 0.0, 0.01)
        before = timeline.total_by_category()
        n = FaultInjector(plan).annotate(timeline)
        assert n == 3
        spans = [e for e in timeline.events if e.category == EventCategory.FAULT]
        assert len(spans) == 3
        assert all(e.stream == OBS_STREAM for e in spans)
        kinds = {e.args["kind"] for e in spans}
        assert kinds == {"link_outage", "straggler", "shard_crash"}
        # OBS-lane annotations are excluded from time accounting
        assert timeline.total_by_category() == before
