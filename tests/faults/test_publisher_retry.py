"""DeltaPublisher under corruption: detection, retry, error-feedback-safe
replay, and the staleness bound across failed rounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive import AdaptiveController, OfflineAnalyzer
from repro.data import SyntheticClickDataset, make_uniform_spec
from repro.dist import ClusterSimulator
from repro.dist.timeline import EventCategory
from repro.faults import CorruptionFault, FaultInjector, FaultPlan, RetryPolicy
from repro.model import DLRM, DLRMConfig
from repro.serve import build_serving_tier
from repro.train import CompressionPipeline, HybridParallelTrainer

N_TABLES = 4
CARDINALITY = 200


@pytest.fixture()
def trainer():
    spec = make_uniform_spec(
        "faults-pub", n_tables=N_TABLES, cardinality=CARDINALITY, zipf_exponent=1.2
    )
    dataset = SyntheticClickDataset(spec, seed=51, teacher_scale=3.0)
    config = DLRMConfig.from_dataset(spec, embedding_dim=8, seed=52)
    model = DLRM(config)
    batch = dataset.batch(128, batch_index=10_000_000)
    samples = {j: model.lookup(j, batch.sparse[:, j]) for j in range(N_TABLES)}
    plan = OfflineAnalyzer().analyze(samples)
    pipeline = CompressionPipeline(AdaptiveController(plan))
    return HybridParallelTrainer(
        model, dataset, ClusterSimulator(2), pipeline=pipeline, lr=0.2
    )


def faulty_tier(trainer, corruptions, max_attempts=3, keep_stale=False):
    injector = FaultInjector(FaultPlan(corruptions=tuple(corruptions)), seed=5)
    return build_serving_tier(
        trainer,
        n_shard_ranks=2,
        n_replicas=1,
        cache_rows=64,
        retry_policy=RetryPolicy(max_attempts=max_attempts, seed=5),
        checksum=True,
        fault_injector=injector,
        keep_stale=keep_stale,
    )


class TestRetryRecovers:
    def test_corrupted_first_attempt_is_retried(self, trainer):
        tier = faulty_tier(trainer, [CorruptionFault(round_index=0, table_index=0, attempt=0)])
        trainer.train_step(64, iteration=0)
        report = tier.publisher.publish(iteration=0)
        assert report.succeeded
        assert report.attempts == 2
        assert report.corrupted_payloads == 1
        assert report.retry_backoff_seconds > 0.0
        assert tier.publisher.staleness() <= report.staleness_bound * (1 + 1e-5)

    def test_backoff_is_charged_as_retry_on_the_fabric(self, trainer):
        tier = faulty_tier(trainer, [CorruptionFault(round_index=0, table_index=0, attempt=0)])
        trainer.train_step(64, iteration=0)
        tier.publisher.publish(iteration=0)
        totals = tier.publisher.simulator.timeline.total_by_category()
        assert totals.get(EventCategory.RETRY, 0.0) > 0.0

    def test_clean_rounds_report_single_attempt(self, trainer):
        tier = faulty_tier(trainer, [])
        trainer.train_step(64, iteration=0)
        report = tier.publisher.publish(iteration=0)
        assert report.succeeded and report.attempts == 1
        assert report.corrupted_payloads == 0
        assert report.retry_backoff_seconds == 0.0


class TestFailedRounds:
    def all_attempts_corrupt(self, round_index, max_attempts):
        return [
            CorruptionFault(round_index=round_index, table_index=0, attempt=a)
            for a in range(max_attempts)
        ]

    def test_exhausted_retries_apply_nothing(self, trainer):
        tier = faulty_tier(trainer, self.all_attempts_corrupt(0, 3))
        publisher = tier.publisher
        before = [publisher.published_table(t).copy() for t in range(N_TABLES)]
        shard_before = [
            tier.servers[rank].table_array(t).copy()
            for rank in range(2)
            for t in tier.sharding.tables_of(rank)
        ]
        trainer.train_step(64, iteration=0)
        report = publisher.publish(iteration=0)
        assert not report.succeeded
        assert report.attempts == 3
        assert report.downtime_seconds == 0.0  # replicas never paused
        for t in range(N_TABLES):
            assert np.array_equal(publisher.published_table(t), before[t])
        shard_after = [
            tier.servers[rank].table_array(t)
            for rank in range(2)
            for t in tier.sharding.tables_of(rank)
        ]
        for got, expected in zip(shard_after, shard_before):
            assert np.array_equal(got, expected)

    def test_staleness_does_not_accumulate_across_failed_rounds(self, trainer):
        """Error-feedback-safe replay: after any number of abandoned
        rounds, the next successful round lands the tier within that
        single round's bound."""
        tier = faulty_tier(trainer, self.all_attempts_corrupt(0, 3) + self.all_attempts_corrupt(1, 3))
        publisher = tier.publisher
        for round_index in range(3):
            trainer.train_step(64, iteration=round_index)
            report = publisher.publish(iteration=round_index)
            assert report.succeeded == (round_index == 2)
        assert publisher.staleness() <= report.staleness_bound * (1 + 1e-5)

    def test_failed_round_still_counts_corruptions(self, trainer):
        tier = faulty_tier(trainer, self.all_attempts_corrupt(0, 2), max_attempts=2)
        trainer.train_step(64, iteration=0)
        report = tier.publisher.publish(iteration=0)
        assert report.corrupted_payloads == 2


class TestConfiguration:
    def test_corruption_plan_requires_checksum(self, trainer):
        injector = FaultInjector(
            FaultPlan(corruptions=(CorruptionFault(round_index=0),))
        )
        with pytest.raises(ValueError, match="checksum"):
            build_serving_tier(
                trainer,
                n_shard_ranks=2,
                n_replicas=1,
                cache_rows=64,
                retry_policy=RetryPolicy(seed=0),
                checksum=False,
                fault_injector=injector,
            )

    def test_checksummed_publication_matches_plain_numerics(self, trainer):
        """The CRC32 envelope is framing only — published state is
        identical with and without it."""
        plain_tier = build_serving_tier(trainer, n_shard_ranks=2, n_replicas=1, cache_rows=64)
        framed_tier = build_serving_tier(
            trainer, n_shard_ranks=2, n_replicas=1, cache_rows=64, checksum=True
        )
        for round_index in range(2):
            trainer.train_step(64, iteration=round_index)
            plain_tier.publisher.publish(iteration=round_index)
            framed_tier.publisher.publish(iteration=round_index)
        for t in range(N_TABLES):
            assert np.array_equal(
                plain_tier.publisher.published_table(t),
                framed_tier.publisher.published_table(t),
            )
