"""TrainerCheckpoint: bit-identical resume after an injected failure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive import AdaptiveController, OfflineAnalyzer
from repro.data import SyntheticClickDataset, make_uniform_spec
from repro.dist import ClusterSimulator
from repro.dist.timeline import EventCategory
from repro.faults import TrainerCheckpoint
from repro.model import DLRM, DLRMConfig
from repro.train import CompressionPipeline, HybridParallelTrainer

N_TABLES = 4
CARDINALITY = 200


def build_trainer(optimizer="sgd", compressed=True):
    spec = make_uniform_spec(
        "faults-ckpt", n_tables=N_TABLES, cardinality=CARDINALITY, zipf_exponent=1.2
    )
    dataset = SyntheticClickDataset(spec, seed=41, teacher_scale=3.0)
    config = DLRMConfig.from_dataset(spec, embedding_dim=8, seed=42)
    model = DLRM(config)
    pipeline = None
    if compressed:
        batch = dataset.batch(128, batch_index=10_000_000)
        samples = {j: model.lookup(j, batch.sparse[:, j]) for j in range(N_TABLES)}
        plan = OfflineAnalyzer().analyze(samples)
        pipeline = CompressionPipeline(AdaptiveController(plan))
    return HybridParallelTrainer(
        model,
        dataset,
        ClusterSimulator(2),
        pipeline=pipeline,
        lr=0.2,
        optimizer=optimizer,
    )


def param_bytes(trainer):
    return b"".join(p.data.tobytes() for p in trainer.model.parameters())


def run_to(trainer, stop, start=0):
    for iteration in range(start, stop):
        trainer.train_step(64, iteration=iteration)


@pytest.mark.parametrize("optimizer", ["sgd", "adagrad"])
def test_resume_is_bit_identical(optimizer):
    """The tentpole invariant: crash after iteration k, restore the
    iteration-k snapshot, replay — final parameters match the
    uninterrupted twin byte for byte (compression caches included)."""
    straight = build_trainer(optimizer)
    run_to(straight, 6)
    reference = param_bytes(straight)

    resumed = build_trainer(optimizer)
    run_to(resumed, 3)
    snapshot = TrainerCheckpoint.capture(resumed, iteration=3)
    run_to(resumed, 5, start=3)  # lost work: the failure hits at iteration 5
    assert snapshot.restore(resumed) == 3
    run_to(resumed, 6, start=3)
    assert param_bytes(resumed) == reference


def test_repeated_restores_from_one_snapshot():
    trainer = build_trainer()
    run_to(trainer, 2)
    snapshot = TrainerCheckpoint.capture(trainer, iteration=2)
    results = []
    for _ in range(2):
        snapshot.restore(trainer)
        run_to(trainer, 4, start=2)
        results.append(param_bytes(trainer))
    assert results[0] == results[1]  # the snapshot stays pristine


def test_optimizer_state_restored():
    trainer = build_trainer("adagrad")
    run_to(trainer, 2)
    snapshot = TrainerCheckpoint.capture(trainer, iteration=2)
    saved = [a.copy() for a in trainer._opt._state]
    run_to(trainer, 4, start=2)
    assert any(
        not np.array_equal(a, b) for a, b in zip(trainer._opt._state, saved)
    ), "training should have moved the accumulators"
    snapshot.restore(trainer)
    for live, expected in zip(trainer._opt._state, saved):
        assert np.array_equal(live, expected)


def test_checkpoint_and_restore_are_charged():
    trainer = build_trainer()
    run_to(trainer, 1)
    before = trainer.simulator.makespan()
    snapshot = TrainerCheckpoint.capture(trainer, iteration=1)
    after_capture = trainer.simulator.makespan()
    assert after_capture > before
    snapshot.restore(trainer)
    assert trainer.simulator.makespan() > after_capture
    totals = trainer.simulator.timeline.total_by_category()
    assert totals.get(EventCategory.CHECKPOINT, 0.0) > 0.0
    assert totals.get(EventCategory.RESTORE, 0.0) > 0.0
    assert snapshot.nbytes > 0


def test_uncharged_capture_leaves_the_clock_alone():
    trainer = build_trainer()
    run_to(trainer, 1)
    before = trainer.simulator.makespan()
    snapshot = TrainerCheckpoint.capture(trainer, iteration=1, charge=False)
    snapshot.restore(trainer, charge=False)
    assert trainer.simulator.makespan() == before


def test_restore_rejects_mismatched_trainer():
    donor = build_trainer()
    snapshot = TrainerCheckpoint.capture(donor, iteration=0, charge=False)
    spec = make_uniform_spec("faults-ckpt-other", n_tables=2, cardinality=50)
    dataset = SyntheticClickDataset(spec, seed=1)
    other = HybridParallelTrainer(
        DLRM(DLRMConfig.from_dataset(spec, embedding_dim=8, seed=2)),
        dataset,
        ClusterSimulator(2),
        pipeline=None,
        lr=0.1,
    )
    with pytest.raises(ValueError):
        snapshot.restore(other)


def test_capture_validates_iteration():
    trainer = build_trainer()
    with pytest.raises(ValueError):
        TrainerCheckpoint.capture(trainer, iteration=-1)
