"""The day-in-the-life chaos scenario: acceptance invariants + artifacts."""

from __future__ import annotations

import json

import pytest

from repro.faults import run_day_in_the_life_under_faults
from repro.obs.schema import validate_snapshot_json


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    out = tmp_path_factory.mktemp("chaos")
    return run_day_in_the_life_under_faults(
        n_iterations=4, n_requests=120, out_dir=out
    )


class TestInvariants:
    def test_resume_is_bit_identical(self, result):
        assert result.params_bit_identical
        assert result.restores >= 1
        assert result.checkpoints_taken >= 1

    def test_training_makespan_never_shrinks_under_faults(self, result):
        assert result.faulty_train_makespan >= result.healthy_train_makespan

    def test_publisher_staleness_within_bound_after_failed_rounds(self, result):
        assert result.failed_publish_rounds >= 1
        assert result.publish_attempts_total > result.publish_rounds
        assert result.staleness_after_last_success <= (
            result.last_success_staleness_bound * (1 + 1e-5)
        )

    def test_served_rows_bounded_or_flagged(self, result):
        assert result.fresh_requests + result.impaired_requests == result.n_requests
        assert result.stale_rows + result.degraded_rows > 0
        assert result.compound_bound > 0.0

    def test_scenario_is_deterministic(self, result):
        twin = run_day_in_the_life_under_faults(n_iterations=4, n_requests=120)
        assert twin.faulty_train_makespan == result.faulty_train_makespan
        assert twin.impaired_requests == result.impaired_requests
        assert twin.staleness_after_last_success == result.staleness_after_last_success


class TestObservability:
    def test_fault_and_retry_counters_land_in_the_snapshot(self, result):
        names = set(result.snapshot.names())
        assert "faults_injected_total" in names
        assert "publish_retries_total" in names
        assert "publish_corrupt_payloads_total" in names
        assert "publish_failed_rounds_total" in names
        assert "checkpoints_taken_total" in names
        assert "checkpoint_restores_total" in names
        assert "serve_degraded_rows_total" in names

    def test_trace_carries_fault_annotation_spans(self, result):
        fault_spans = [
            e
            for e in result.trace["traceEvents"]
            if e.get("ph") == "X" and e.get("name") == "fault"
        ]
        assert fault_spans, "FAULT windows must be visible in the chrome trace"
        kinds = {e["args"]["kind"] for e in fault_spans if "args" in e}
        assert "shard_crash" in kinds

    def test_artifacts_written_and_valid(self, result):
        assert set(result.paths) == {
            "metrics.json",
            "metrics.prom",
            "chaos_trace.json",
            "run_report.txt",
        }
        for path in result.paths.values():
            assert path.exists() and path.stat().st_size > 0
        validate_snapshot_json(result.paths["metrics.json"].read_text())
        trace = json.loads(result.paths["chaos_trace.json"].read_text())
        assert trace["traceEvents"]
        assert "fault" in result.paths["run_report.txt"].read_text().lower()


class TestValidation:
    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            run_day_in_the_life_under_faults(n_iterations=1)
        with pytest.raises(ValueError):
            run_day_in_the_life_under_faults(n_requests=0)
        with pytest.raises(ValueError):
            run_day_in_the_life_under_faults(checkpoint_every=0)