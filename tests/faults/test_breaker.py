"""CircuitBreaker: the three-state machine on explicit timestamps."""

from __future__ import annotations

import pytest

from repro.faults import CircuitBreaker


def make(threshold=3, reset=0.1):
    return CircuitBreaker(failure_threshold=threshold, reset_timeout_seconds=reset)


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker = make()
        assert breaker.state(0.0) == CircuitBreaker.CLOSED
        assert breaker.allows(0.0)

    def test_failures_below_threshold_stay_closed(self):
        breaker = make(threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(0.01)
        assert breaker.state(0.02) == CircuitBreaker.CLOSED
        assert breaker.opened_total == 0

    def test_success_clears_the_failure_run(self):
        breaker = make(threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success(0.01)
        breaker.record_failure(0.02)
        assert breaker.state(0.03) == CircuitBreaker.CLOSED


class TestOpen:
    def test_trips_at_threshold_and_fails_fast(self):
        breaker = make(threshold=3, reset=0.1)
        for i in range(3):
            breaker.record_failure(0.01 * i)
        assert breaker.state(0.03) == CircuitBreaker.OPEN
        assert not breaker.allows(0.03)
        assert breaker.opened_total == 1

    def test_decays_to_half_open_after_cooldown(self):
        breaker = make(threshold=1, reset=0.1)
        breaker.record_failure(0.5)
        assert breaker.state(0.59) == CircuitBreaker.OPEN
        assert breaker.state(0.6) == CircuitBreaker.HALF_OPEN
        assert breaker.allows(0.6)


class TestHalfOpen:
    def test_probe_success_closes(self):
        breaker = make(threshold=1, reset=0.1)
        breaker.record_failure(0.0)
        breaker.record_success(0.2)
        assert breaker.state(0.2) == CircuitBreaker.CLOSED
        assert breaker.allows(0.2)

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker = make(threshold=3, reset=0.1)
        for i in range(3):
            breaker.record_failure(0.01 * i)
        breaker.record_failure(0.2)  # half-open probe fails
        assert breaker.state(0.25) == CircuitBreaker.OPEN
        assert breaker.state(0.31) == CircuitBreaker.HALF_OPEN
        assert breaker.opened_total == 2


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_seconds=0.0)
