"""Tests for the pipelined (overlap) exchange model and related helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive import AdaptiveController, OfflineAnalyzer
from repro.compression.quantizer import relative_to_absolute_bound
from repro.train import CompressionPipeline
from tests.conftest import make_gaussian_batch, make_hot_batch


@pytest.fixture
def pipeline(rng) -> CompressionPipeline:
    samples = {0: make_hot_batch(rng), 1: make_gaussian_batch(rng)}
    plan = OfflineAnalyzer().analyze(samples)
    return CompressionPipeline(AdaptiveController(plan), fused_kernels=False)


class TestPipelinedExchange:
    def test_never_worse_than_sequential(self, pipeline):
        chunks = [("vector_lz", 1 << 20)] * 8
        wire = [5e-5] * 8
        overlapped = pipeline.pipelined_exchange_seconds(chunks, wire)
        sequential = pipeline.sequential_exchange_seconds(chunks, wire)
        assert overlapped <= sequential

    def test_lower_bounded_by_each_stage(self, pipeline):
        chunks = [("vector_lz", 1 << 20)] * 8
        wire = [5e-5] * 8
        overlapped = pipeline.pipelined_exchange_seconds(chunks, wire)
        assert overlapped >= sum(wire)
        compress_only = pipeline.compression_seconds(chunks)
        # The chunked compression of the same chunks is a lower bound too
        # (fused_kernels=False so pricing matches).
        assert overlapped >= compress_only - 1e-12

    def test_wire_dominated_limit(self, pipeline):
        """When the wire is very slow, overlap hides compression almost
        entirely: makespan ~ first-chunk compress + total wire."""
        chunks = [("vector_lz", 1 << 16)] * 4
        wire = [1.0] * 4  # 1 s per chunk: wire utterly dominates
        overlapped = pipeline.pipelined_exchange_seconds(chunks, wire)
        assert overlapped == pytest.approx(
            4.0 + pipeline.compression_seconds([chunks[0]]), rel=1e-3
        )

    def test_compress_dominated_limit(self, pipeline):
        """When compression dominates, overlap hides the wire except the
        final chunk's transmission."""
        chunks = [("vector_lz", 1 << 24)] * 4
        wire = [1e-9] * 4
        overlapped = pipeline.pipelined_exchange_seconds(chunks, wire)
        total_compress = pipeline.compression_seconds(chunks)
        assert overlapped == pytest.approx(total_compress + 1e-9, rel=1e-6)

    def test_empty(self, pipeline):
        assert pipeline.pipelined_exchange_seconds([], []) == 0.0

    def test_length_mismatch_rejected(self, pipeline):
        with pytest.raises(ValueError, match="wire times"):
            pipeline.pipelined_exchange_seconds([("vector_lz", 100)], [])
        with pytest.raises(ValueError, match="wire times"):
            pipeline.sequential_exchange_seconds([("vector_lz", 100)], [])

    def test_negative_wire_rejected(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.pipelined_exchange_seconds([("vector_lz", 100)], [-1.0])

    @given(
        st.lists(st.floats(min_value=0, max_value=1e-3), min_size=1, max_size=12),
        st.integers(min_value=10, max_value=1 << 22),
    )
    @settings(max_examples=30, deadline=None)
    def test_between_bounds_property(self, wire, chunk_bytes):
        samples_rng = np.random.default_rng(0)
        samples = {0: make_hot_batch(samples_rng)}
        plan = OfflineAnalyzer().analyze(samples)
        pipeline = CompressionPipeline(AdaptiveController(plan), fused_kernels=False)
        chunks = [("vector_lz", chunk_bytes)] * len(wire)
        overlapped = pipeline.pipelined_exchange_seconds(chunks, wire)
        sequential = pipeline.sequential_exchange_seconds(chunks, wire)
        compress_total = pipeline.compression_seconds(chunks)
        assert max(sum(wire), compress_total) - 1e-12 <= overlapped <= sequential + 1e-12


def _tiny_workflow(n_ranks=8, max_cardinality=600):
    from repro.data import CRITEO_KAGGLE, SyntheticClickDataset, scaled_spec
    from repro.model import DLRM, DLRMConfig

    spec = scaled_spec(CRITEO_KAGGLE, max_cardinality=max_cardinality)
    dataset = SyntheticClickDataset(spec, seed=31, teacher_scale=3.0)
    config = DLRMConfig.from_dataset(
        spec, embedding_dim=8, bottom_hidden=(16,), top_hidden=(16,), seed=32
    )
    probe = DLRM(config)
    batch = dataset.batch(128, batch_index=888)
    samples = {j: probe.lookup(j, batch.sparse[:, j]) for j in range(spec.n_tables)}
    from repro.adaptive import OfflineAnalyzer

    plan = OfflineAnalyzer().analyze(samples)
    return dataset, config, plan


def _train_makespan(dataset, config, plan, *, overlap, n_ranks=8, network=None, **kw):
    from repro.dist import ClusterSimulator
    from repro.model import DLRM
    from repro.train import HybridParallelTrainer

    sim = ClusterSimulator(n_ranks, network=network)
    pipeline = CompressionPipeline(AdaptiveController(plan))
    trainer = HybridParallelTrainer(
        DLRM(config), dataset, sim, pipeline=pipeline, lr=0.2, overlap=overlap, **kw
    )
    trainer.train(2, 32 * n_ranks)
    return sim


class TestTrainerThroughCommunicator:
    """The tentpole's acceptance criteria on the trainer refactor."""

    def test_no_direct_collective_charging(self):
        """`HybridParallelTrainer` must route every exchange through the
        Communicator — zero direct ``simulator.collective`` calls."""
        import inspect

        from repro.train import hybrid

        source = inspect.getsource(hybrid.HybridParallelTrainer)
        assert "simulator.collective" not in source

    def test_overlap_on_beats_overlap_off_8_ranks(self):
        """Acceptance: overlap-on end-to-end makespan strictly below
        overlap-off on the paper's 8-rank configuration."""
        dataset, config, plan = _tiny_workflow()
        sequential = _train_makespan(dataset, config, plan, overlap=False)
        overlapped = _train_makespan(dataset, config, plan, overlap=True)
        assert overlapped.makespan() < sequential.makespan()

    def test_overlap_never_worse_with_backward_compression(self):
        dataset, config, plan = _tiny_workflow()
        makespans = {}
        for overlap in (False, True):
            from repro.dist import ClusterSimulator
            from repro.model import DLRM
            from repro.train import HybridParallelTrainer

            sim = ClusterSimulator(4)
            pipeline = CompressionPipeline(AdaptiveController(plan), compress_backward=True)
            HybridParallelTrainer(
                DLRM(config), dataset, sim, pipeline=pipeline, lr=0.2, overlap=overlap
            ).train(2, 64)
            makespans[overlap] = sim.makespan()
        assert makespans[True] <= makespans[False] + 1e-12

    def test_overlap_does_not_change_numerics(self):
        """Overlap changes *when* things are charged, never *what* the
        receivers decode: losses are bit-identical."""
        from repro.dist import ClusterSimulator
        from repro.model import DLRM
        from repro.train import HybridParallelTrainer

        dataset, config, plan = _tiny_workflow()
        losses = {}
        for overlap in (False, True):
            sim = ClusterSimulator(4)
            pipeline = CompressionPipeline(AdaptiveController(plan))
            trainer = HybridParallelTrainer(
                DLRM(config), dataset, sim, pipeline=pipeline, lr=0.2, overlap=overlap
            )
            losses[overlap] = [trainer.train_step(64, it) for it in range(2)]
        assert losses[False] == losses[True]

    def test_uncompressed_exchange_stays_exact(self):
        """Routing the raw exchange through the Communicator hands
        receivers bit-identical lookup rows."""
        from repro.dist import ClusterSimulator
        from repro.model import DLRM
        from repro.train import HybridParallelTrainer, ReferenceTrainer

        dataset, config, _ = _tiny_workflow()
        sim = ClusterSimulator(4)
        hybrid_trainer = HybridParallelTrainer(DLRM(config), dataset, sim, lr=0.2)
        reference = ReferenceTrainer(DLRM(config), dataset, lr=0.2)
        for iteration in range(2):
            hybrid_loss = hybrid_trainer.train_step(64, iteration)
            reference_loss = reference.train_step(64, iteration)
            assert hybrid_loss == pytest.approx(reference_loss, rel=1e-12)

    def test_overlap_efficiency_reported(self):
        from repro.profiling import overlap_efficiency

        dataset, config, plan = _tiny_workflow()
        sequential = _train_makespan(dataset, config, plan, overlap=False, n_ranks=4)
        overlapped = _train_makespan(dataset, config, plan, overlap=True, n_ranks=4)
        assert overlap_efficiency(sequential.timeline) == 0.0
        assert overlap_efficiency(overlapped.timeline) > 0.0

    def test_hierarchical_allreduce_routed(self):
        from repro.dist import NetworkModel, Topology

        dataset, config, plan = _tiny_workflow()
        network = NetworkModel.from_topology(Topology.hierarchical(2, 4))
        ring = _train_makespan(
            dataset, config, plan, overlap=False, network=network,
            allreduce_algorithm="ring",
        )
        hier = _train_makespan(
            dataset, config, plan, overlap=False, network=network,
            allreduce_algorithm="hierarchical",
        )
        ring_ar = ring.timeline.total_by_category(rank=0)["allreduce"]
        hier_ar = hier.timeline.total_by_category(rank=0)["allreduce"]
        assert hier_ar < ring_ar

    def test_bad_allreduce_algorithm_rejected(self):
        from repro.dist import ClusterSimulator
        from repro.model import DLRM
        from repro.train import HybridParallelTrainer

        dataset, config, _ = _tiny_workflow()
        with pytest.raises(ValueError):
            HybridParallelTrainer(
                DLRM(config), dataset, ClusterSimulator(4), allreduce_algorithm="tree"
            )


class TestRelativeBound:
    def test_scales_with_range(self):
        data = np.array([0.0, 2.0], dtype=np.float32)
        assert relative_to_absolute_bound(data, 0.01) == pytest.approx(0.02)

    def test_constant_input_falls_back_to_magnitude(self):
        data = np.full(4, 5.0, dtype=np.float32)
        assert relative_to_absolute_bound(data, 0.1) == pytest.approx(0.5)

    def test_zero_input_positive_bound(self):
        data = np.zeros(4, dtype=np.float32)
        assert relative_to_absolute_bound(data, 0.1) > 0

    def test_usable_with_compressor(self, rng):
        from repro.compression import HybridCompressor

        data = make_gaussian_batch(rng)
        bound = relative_to_absolute_bound(data, 0.01)
        codec = HybridCompressor()
        rec = codec.decompress(codec.compress(data, bound))
        assert np.abs(data - rec).max() <= bound * (1 + 1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_to_absolute_bound(np.zeros(0), 0.1)
        with pytest.raises(ValueError):
            relative_to_absolute_bound(np.ones(3), 0.0)
        with pytest.raises(ValueError):
            relative_to_absolute_bound(np.array([np.nan]), 0.1)
