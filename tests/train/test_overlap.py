"""Tests for the pipelined (overlap) exchange model and related helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive import AdaptiveController, OfflineAnalyzer
from repro.compression.quantizer import relative_to_absolute_bound
from repro.train import CompressionPipeline
from tests.conftest import make_gaussian_batch, make_hot_batch


@pytest.fixture
def pipeline(rng) -> CompressionPipeline:
    samples = {0: make_hot_batch(rng), 1: make_gaussian_batch(rng)}
    plan = OfflineAnalyzer().analyze(samples)
    return CompressionPipeline(AdaptiveController(plan), fused_kernels=False)


class TestPipelinedExchange:
    def test_never_worse_than_sequential(self, pipeline):
        chunks = [("vector_lz", 1 << 20)] * 8
        wire = [5e-5] * 8
        overlapped = pipeline.pipelined_exchange_seconds(chunks, wire)
        sequential = pipeline.sequential_exchange_seconds(chunks, wire)
        assert overlapped <= sequential

    def test_lower_bounded_by_each_stage(self, pipeline):
        chunks = [("vector_lz", 1 << 20)] * 8
        wire = [5e-5] * 8
        overlapped = pipeline.pipelined_exchange_seconds(chunks, wire)
        assert overlapped >= sum(wire)
        compress_only = pipeline.compression_seconds(chunks)
        # The chunked compression of the same chunks is a lower bound too
        # (fused_kernels=False so pricing matches).
        assert overlapped >= compress_only - 1e-12

    def test_wire_dominated_limit(self, pipeline):
        """When the wire is very slow, overlap hides compression almost
        entirely: makespan ~ first-chunk compress + total wire."""
        chunks = [("vector_lz", 1 << 16)] * 4
        wire = [1.0] * 4  # 1 s per chunk: wire utterly dominates
        overlapped = pipeline.pipelined_exchange_seconds(chunks, wire)
        assert overlapped == pytest.approx(
            4.0 + pipeline.compression_seconds([chunks[0]]), rel=1e-3
        )

    def test_compress_dominated_limit(self, pipeline):
        """When compression dominates, overlap hides the wire except the
        final chunk's transmission."""
        chunks = [("vector_lz", 1 << 24)] * 4
        wire = [1e-9] * 4
        overlapped = pipeline.pipelined_exchange_seconds(chunks, wire)
        total_compress = pipeline.compression_seconds(chunks)
        assert overlapped == pytest.approx(total_compress + 1e-9, rel=1e-6)

    def test_empty(self, pipeline):
        assert pipeline.pipelined_exchange_seconds([], []) == 0.0

    def test_length_mismatch_rejected(self, pipeline):
        with pytest.raises(ValueError, match="wire times"):
            pipeline.pipelined_exchange_seconds([("vector_lz", 100)], [])
        with pytest.raises(ValueError, match="wire times"):
            pipeline.sequential_exchange_seconds([("vector_lz", 100)], [])

    def test_negative_wire_rejected(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.pipelined_exchange_seconds([("vector_lz", 100)], [-1.0])

    @given(
        st.lists(st.floats(min_value=0, max_value=1e-3), min_size=1, max_size=12),
        st.integers(min_value=10, max_value=1 << 22),
    )
    @settings(max_examples=30, deadline=None)
    def test_between_bounds_property(self, wire, chunk_bytes):
        samples_rng = np.random.default_rng(0)
        samples = {0: make_hot_batch(samples_rng)}
        plan = OfflineAnalyzer().analyze(samples)
        pipeline = CompressionPipeline(AdaptiveController(plan), fused_kernels=False)
        chunks = [("vector_lz", chunk_bytes)] * len(wire)
        overlapped = pipeline.pipelined_exchange_seconds(chunks, wire)
        sequential = pipeline.sequential_exchange_seconds(chunks, wire)
        compress_total = pipeline.compression_seconds(chunks)
        assert max(sum(wire), compress_total) - 1e-12 <= overlapped <= sequential + 1e-12


class TestRelativeBound:
    def test_scales_with_range(self):
        data = np.array([0.0, 2.0], dtype=np.float32)
        assert relative_to_absolute_bound(data, 0.01) == pytest.approx(0.02)

    def test_constant_input_falls_back_to_magnitude(self):
        data = np.full(4, 5.0, dtype=np.float32)
        assert relative_to_absolute_bound(data, 0.1) == pytest.approx(0.5)

    def test_zero_input_positive_bound(self):
        data = np.zeros(4, dtype=np.float32)
        assert relative_to_absolute_bound(data, 0.1) > 0

    def test_usable_with_compressor(self, rng):
        from repro.compression import HybridCompressor

        data = make_gaussian_batch(rng)
        bound = relative_to_absolute_bound(data, 0.01)
        codec = HybridCompressor()
        rec = codec.decompress(codec.compress(data, bound))
        assert np.abs(data - rec).max() <= bound * (1 + 1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_to_absolute_bound(np.zeros(0), 0.1)
        with pytest.raises(ValueError):
            relative_to_absolute_bound(np.ones(3), 0.0)
        with pytest.raises(ValueError):
            relative_to_absolute_bound(np.array([np.nan]), 0.1)
