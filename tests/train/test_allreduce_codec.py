"""Regression: the trainer's ``allreduce_codec=`` knob is bit-for-bound.

The dense-gradient all-reduce may be routed through the homomorphic
codecs (``Communicator.compressed_all_reduce``).  This suite pins the
numerics contract of that knob against the seed dense path:

* ``allreduce_codec=None`` (the default) is the seed path — explicitly
  passing ``None`` changes nothing, byte for byte;
* ``allreduce_codec="count_sum"`` is *lossless*: model parameters and
  losses are bit-identical to the dense path after N steps, across every
  overlap mode and all-reduce algorithm;
* ``allreduce_codec="quant_sum"`` stays within the closed-form composed
  bound: after S steps at learning rate lr on n ranks with error bound
  eb, every parameter sits within ``S * lr * n * eb`` of its dense twin;
* a non-homomorphic codec is refused at construction time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive import AdaptiveController
from repro.dist import IB_HDR_LIKE, NVLINK_LIKE, ClusterSimulator, NetworkModel, Topology
from repro.model import DLRM
from repro.train import CompressionPipeline, HybridParallelTrainer
from tests.train.test_overlap import _tiny_workflow

N_RANKS = 4
LR = 0.2
STEPS = 3


def _run(config, dataset, plan, *, overlap=False, network=None, steps=STEPS, **kw):
    sim = ClusterSimulator(N_RANKS, network=network)
    pipeline = CompressionPipeline(AdaptiveController(plan))
    trainer = HybridParallelTrainer(
        DLRM(config), dataset, sim, pipeline=pipeline, lr=LR, overlap=overlap, **kw
    )
    losses = [trainer.train_step(32 * N_RANKS, it) for it in range(steps)]
    params = [p.data.copy() for p in trainer.model.parameters()]
    return sim, params, losses


@pytest.fixture(scope="module")
def workflow():
    return _tiny_workflow(n_ranks=N_RANKS)


@pytest.fixture(scope="module")
def dense_run(workflow):
    dataset, config, plan = workflow
    return _run(config, dataset, plan)


class TestSeedEquivalence:
    def test_explicit_none_is_the_seed_path(self, workflow, dense_run):
        dataset, config, plan = workflow
        _, params, losses = _run(config, dataset, plan, allreduce_codec=None)
        _, dense_params, dense_losses = dense_run
        assert losses == dense_losses
        for got, want in zip(params, dense_params):
            assert got.tobytes() == want.tobytes()

    @pytest.mark.parametrize("overlap", [False, True, "cross_stage"])
    @pytest.mark.parametrize("algorithm", ["ring", "hierarchical", "switch"])
    def test_count_sum_bit_identical_to_dense(self, workflow, overlap, algorithm):
        dataset, config, plan = workflow
        _, dense_params, dense_losses = _run(config, dataset, plan, overlap=overlap)
        _, params, losses = _run(
            config,
            dataset,
            plan,
            overlap=overlap,
            allreduce_codec="count_sum",
            allreduce_algorithm=algorithm,
        )
        assert losses == dense_losses
        for got, want in zip(params, dense_params):
            assert got.tobytes() == want.tobytes()

    def test_count_sum_bit_identical_on_switch_fabric(self, workflow):
        dataset, config, plan = workflow
        network = NetworkModel.from_topology(
            Topology.hierarchical(
                2, 2, NVLINK_LIKE, IB_HDR_LIKE, switch_aggregation=True
            )
        )
        _, dense_params, dense_losses = _run(config, dataset, plan)
        _, params, losses = _run(
            config,
            dataset,
            plan,
            network=network,
            allreduce_codec="count_sum",
            allreduce_algorithm="switch",
        )
        assert losses == dense_losses
        for got, want in zip(params, dense_params):
            assert got.tobytes() == want.tobytes()


class TestQuantSumBound:
    @pytest.mark.parametrize("overlap", [False, True, "cross_stage"])
    def test_parameters_within_composed_bound(self, workflow, overlap, dense_run):
        eb = 1e-3
        dataset, config, plan = workflow
        if overlap is not False:
            _, dense_params, _ = _run(config, dataset, plan, overlap=overlap)
        else:
            _, dense_params, _ = dense_run
        _, params, _ = _run(
            config,
            dataset,
            plan,
            overlap=overlap,
            allreduce_codec="quant_sum",
            allreduce_error_bound=eb,
        )
        # Per step the decoded gradient total is within the composed bound
        # n * eb of the exact sum, so each SGD update moves a parameter by
        # at most lr * n * eb away from its dense twin.
        bound = STEPS * LR * N_RANKS * eb
        worst = max(
            float(np.max(np.abs(got.astype(np.float64) - want.astype(np.float64)), initial=0.0))
            for got, want in zip(params, dense_params)
        )
        assert 0.0 < worst <= bound

    def test_tighter_bound_tracks_dense_more_closely(self, workflow, dense_run):
        dataset, config, plan = workflow
        _, dense_params, _ = dense_run

        def worst_delta(eb):
            _, params, _ = _run(
                config,
                dataset,
                plan,
                allreduce_codec="quant_sum",
                allreduce_error_bound=eb,
            )
            return max(
                float(np.max(np.abs(g.astype(np.float64) - w.astype(np.float64)), initial=0.0))
                for g, w in zip(params, dense_params)
            )

        assert worst_delta(1e-5) < worst_delta(1e-2)


class TestValidation:
    def test_non_homomorphic_codec_rejected(self, workflow):
        dataset, config, plan = workflow
        sim = ClusterSimulator(N_RANKS)
        with pytest.raises(ValueError, match="allreduce_codec"):
            HybridParallelTrainer(
                DLRM(config),
                dataset,
                sim,
                pipeline=CompressionPipeline(AdaptiveController(plan)),
                lr=LR,
                allreduce_codec="hybrid",
            )

    def test_unknown_algorithm_rejected(self, workflow):
        dataset, config, plan = workflow
        sim = ClusterSimulator(N_RANKS)
        with pytest.raises(ValueError, match="allreduce_algorithm"):
            HybridParallelTrainer(
                DLRM(config),
                dataset,
                sim,
                pipeline=CompressionPipeline(AdaptiveController(plan)),
                lr=LR,
                allreduce_algorithm="mesh",
            )
