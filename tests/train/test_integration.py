"""End-to-end integration tests across the whole stack.

These tests exercise the full paper workflow — synthetic data -> DLRM ->
offline analysis -> dual-level controller -> compressed hybrid-parallel
training — and pin cross-module invariants that no unit test sees.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive import (
    AdaptiveController,
    OfflineAnalyzer,
    StepwiseDecay,
)
from repro.compression.base import parse_payload
from repro.data import CRITEO_KAGGLE, SyntheticClickDataset, scaled_spec
from repro.dist import ClusterSimulator, EventCategory
from repro.model import DLRM, DLRMConfig
from repro.train import CompressionPipeline, HybridParallelTrainer


@pytest.fixture(scope="module")
def workflow():
    spec = scaled_spec(CRITEO_KAGGLE, max_cardinality=600)
    dataset = SyntheticClickDataset(spec, seed=31, teacher_scale=3.0)
    config = DLRMConfig.from_dataset(
        spec, embedding_dim=8, bottom_hidden=(16,), top_hidden=(16,), seed=32
    )
    probe = DLRM(config)
    batch = dataset.batch(128, batch_index=888)
    samples = {j: probe.lookup(j, batch.sparse[:, j]) for j in range(spec.n_tables)}
    plan = OfflineAnalyzer().analyze(samples)
    return spec, dataset, config, plan


class TestFullWorkflow:
    def test_compressed_run_accounting(self, workflow):
        spec, dataset, config, plan = workflow
        n_ranks, batch, iters = 8, 256, 4
        sim = ClusterSimulator(n_ranks)
        controller = AdaptiveController(plan, StepwiseDecay(2.0, 2))
        pipeline = CompressionPipeline(controller)
        trainer = HybridParallelTrainer(DLRM(config), dataset, sim, pipeline=pipeline, lr=0.2)
        report = trainer.train(iters, batch)

        # Byte accounting: raw bytes = tables x batch x dim x 4 per iteration.
        expected_raw = spec.n_tables * batch * config.embedding_dim * 4 * iters
        assert report.forward_raw_bytes == expected_raw
        # Wire bytes equal the sum of actual payload sizes recorded by the
        # pipeline (forward direction only).
        stats_bytes = sum(s.compressed_nbytes for s in pipeline.stats)
        assert report.forward_wire_bytes == stats_bytes
        assert report.forward_compression_ratio > 1.0

        # Transfer stats cover every (table, destination, iteration) slice.
        assert len(pipeline.stats) == spec.n_tables * n_ranks * iters

        # The controller's decay is visible in the recorded bounds.
        bounds_iter0 = {s.error_bound for s in pipeline.stats if s.iteration == 0}
        bounds_last = {s.error_bound for s in pipeline.stats if s.iteration == iters - 1}
        assert max(bounds_iter0) > max(bounds_last)

    def test_payload_codecs_match_plan(self, workflow):
        spec, dataset, config, plan = workflow
        controller = AdaptiveController(plan)
        pipeline = CompressionPipeline(controller)
        batch = dataset.batch(64, batch_index=999)
        model = DLRM(config)
        for table_id in range(spec.n_tables):
            rows = model.lookup(table_id, batch.sparse[:, table_id])
            payload = pipeline.compress_slice(table_id, rows, 0)
            header, _ = parse_payload(payload)
            assert header["codec"] == plan.compressor_for(table_id)

    def test_simulated_time_scales_with_ranks(self, workflow):
        """More ranks shrink the per-rank wire volume but add latency."""
        _, dataset, config, _ = workflow
        makespans = {}
        for n_ranks in (2, 8):
            sim = ClusterSimulator(n_ranks)
            trainer = HybridParallelTrainer(DLRM(config), dataset, sim, lr=0.2)
            trainer.train(2, 256)
            makespans[n_ranks] = sim.makespan()
        # With a bandwidth-dominated exchange, 8 ranks beat 2 ranks.
        assert makespans[8] < makespans[2]

    def test_timeline_events_are_causally_ordered(self, workflow):
        _, dataset, config, plan = workflow
        sim = ClusterSimulator(4)
        pipeline = CompressionPipeline(AdaptiveController(plan))
        trainer = HybridParallelTrainer(DLRM(config), dataset, sim, pipeline=pipeline, lr=0.2)
        trainer.train(2, 64)
        # Per-rank events never overlap (each rank is a serial device).
        for rank in range(4):
            events = sorted(
                (e for e in sim.timeline.events if e.rank == rank),
                key=lambda e: (e.start, e.end),
            )
            for a, b in zip(events, events[1:]):
                assert a.end <= b.start + 1e-12
        # Collectives appear on all ranks with identical spans.
        by_cat = {}
        for e in sim.timeline.events:
            if e.category == EventCategory.ALLTOALL_FWD:
                by_cat.setdefault(round(e.start, 15), set()).add(e.rank)
        assert all(ranks == set(range(4)) for ranks in by_cat.values())

    def test_compression_helps_when_bandwidth_low(self, workflow):
        """Crossover: on a slow network compression must win; the benchmark
        suite probes the fast-network side."""
        from repro.dist import NetworkModel

        _, dataset, config, plan = workflow
        slow = NetworkModel(bandwidth=1e9, latency=1e-6)
        times = {}
        for compressed in (False, True):
            sim = ClusterSimulator(8, network=slow)
            pipeline = (
                CompressionPipeline(AdaptiveController(plan)) if compressed else None
            )
            trainer = HybridParallelTrainer(
                DLRM(config), dataset, sim, pipeline=pipeline, lr=0.2
            )
            trainer.train(2, 512)
            times[compressed] = sim.makespan()
        assert times[True] < times[False]


import functools


@functools.lru_cache(maxsize=1)
def _bound_world():
    spec = scaled_spec(CRITEO_KAGGLE, max_cardinality=600)
    dataset = SyntheticClickDataset(spec, seed=31, teacher_scale=3.0)
    config = DLRMConfig.from_dataset(
        spec, embedding_dim=8, bottom_hidden=(16,), top_hidden=(16,), seed=32
    )
    probe = DLRM(config)
    batch = dataset.batch(64, batch_index=888)
    samples = {j: probe.lookup(j, batch.sparse[:, j]) for j in range(spec.n_tables)}
    plan = OfflineAnalyzer().analyze(samples)
    controller = AdaptiveController(plan, StepwiseDecay(3.0, 100))
    return samples, controller, CompressionPipeline(controller)


class TestPipelineBoundProperty:
    @given(
        st.sampled_from([0, 1, 5, 50, 500]),
        st.integers(min_value=0, max_value=25),
    )
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_respects_effective_bound(self, iteration, table_id):
        """For any iteration and table, the pipeline's round-trip error is
        within the controller's effective bound at that iteration."""
        samples, controller, pipeline = _bound_world()
        rows = samples[table_id]
        out = pipeline.roundtrip(table_id, rows, iteration)
        bound = controller.error_bound(table_id, iteration)
        assert np.abs(rows - out).max() <= bound * (1 + 1e-6) + 1e-7
