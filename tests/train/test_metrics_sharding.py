"""Tests for training metrics and the sharding plan."""

from __future__ import annotations

import numpy as np
import pytest

from repro.train.metrics import TrainingHistory, binary_accuracy, roc_auc
from repro.train.sharding import ShardingPlan


class TestBinaryAccuracy:
    def test_perfect_predictions(self):
        logits = np.array([5.0, -5.0, 5.0])
        labels = np.array([1.0, 0.0, 1.0])
        assert binary_accuracy(logits, labels) == 1.0

    def test_inverted_predictions(self):
        assert binary_accuracy(np.array([5.0, -5.0]), np.array([0.0, 1.0])) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            binary_accuracy(np.zeros(0), np.zeros(0))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            binary_accuracy(np.zeros(2), np.zeros(3))


class TestRocAuc:
    def test_perfect_ranking(self):
        logits = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0.0, 0.0, 1.0, 1.0])
        assert roc_auc(logits, labels) == 1.0

    def test_random_ranking_half(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=4000)
        labels = (rng.random(4000) < 0.5).astype(float)
        assert roc_auc(logits, labels) == pytest.approx(0.5, abs=0.05)

    def test_ties_get_midranks(self):
        logits = np.array([0.5, 0.5, 0.5, 0.5])
        labels = np.array([1.0, 0.0, 1.0, 0.0])
        assert roc_auc(logits, labels) == pytest.approx(0.5)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0.1, 0.2]), np.array([1.0, 1.0]))

    def test_matches_sklearn_style_reference(self):
        """Compare against a brute-force pairwise computation."""
        rng = np.random.default_rng(1)
        logits = rng.normal(size=100)
        labels = (rng.random(100) < 0.4).astype(float)
        pos = logits[labels == 1]
        neg = logits[labels == 0]
        wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
        expected = wins / (len(pos) * len(neg))
        assert roc_auc(logits, labels) == pytest.approx(expected)


class TestTrainingHistory:
    def test_record_and_final(self):
        h = TrainingHistory()
        h.record_loss(0.7)
        h.record_eval(10, 0.8, 0.9)
        assert h.final_accuracy == 0.8
        assert h.aucs == [0.9]

    def test_final_accuracy_requires_eval(self):
        with pytest.raises(ValueError):
            TrainingHistory().final_accuracy

    def test_smoothed_losses(self):
        h = TrainingHistory()
        for v in [1.0, 0.0, 1.0, 0.0]:
            h.record_loss(v)
        smoothed = h.smoothed_losses(window=2)
        np.testing.assert_allclose(smoothed, [0.5, 0.5, 0.5])

    def test_smoothed_empty(self):
        assert TrainingHistory().smoothed_losses().size == 0


class TestShardingPlan:
    def test_round_robin(self):
        plan = ShardingPlan.round_robin(5, 2)
        assert plan.owners == (0, 1, 0, 1, 0)
        assert plan.tables_of(0) == (0, 2, 4)
        assert plan.owner_of(1) == 1

    def test_size_balanced_spreads_load(self):
        cards = [1000, 1000, 10, 10, 10, 10]
        plan = ShardingPlan.size_balanced(cards, 2)
        load0 = sum(cards[t] for t in plan.tables_of(0))
        load1 = sum(cards[t] for t in plan.tables_of(1))
        assert abs(load0 - load1) <= 1000

    def test_size_balanced_all_tables_assigned(self):
        plan = ShardingPlan.size_balanced([5, 3, 8, 1, 9, 2], 3)
        assigned = sorted(t for r in range(3) for t in plan.tables_of(r))
        assert assigned == list(range(6))

    def test_more_ranks_than_tables(self):
        plan = ShardingPlan.size_balanced([100, 50], 8)
        assert plan.n_tables == 2
        assert {plan.owner_of(0), plan.owner_of(1)} <= set(range(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardingPlan(owners=(0, 5), n_ranks=2)
        with pytest.raises(ValueError):
            ShardingPlan.round_robin(0, 2)
        with pytest.raises(ValueError):
            ShardingPlan.size_balanced([], 2)
        with pytest.raises(ValueError):
            ShardingPlan.size_balanced([0], 2)
