"""Cross-stage backward overlap: timing-only semantics, pinned numerics.

``overlap="cross_stage"`` makes the trainer issue the backward
embedding-gradient exchange *before* charging the bottom-MLP backward
kernels, so the exchange's wire overlaps compute across pipeline stages.
These tests pin the two contracts: the makespan never gets worse than
within-exchange overlap, and the numerics are byte-identical to both the
sequential and the overlapped schedules.
"""

from __future__ import annotations

import inspect

import pytest

from repro.adaptive import AdaptiveController
from repro.dist import ClusterSimulator, EventCategory
from repro.model import DLRM
from repro.train import CompressionPipeline, HybridParallelTrainer
from tests.train.test_overlap import _tiny_workflow


def _train(config, dataset, plan, *, overlap, n_ranks=4, steps=3, compress_backward=False):
    sim = ClusterSimulator(n_ranks)
    pipeline = (
        CompressionPipeline(
            AdaptiveController(plan), compress_backward=compress_backward
        )
        if plan is not None
        else None
    )
    trainer = HybridParallelTrainer(
        DLRM(config), dataset, sim, pipeline=pipeline, lr=0.2, overlap=overlap
    )
    losses = [trainer.train_step(32 * n_ranks, it) for it in range(steps)]
    return sim, trainer, losses


class TestBitIdentity:
    """The satellite regression: sequential vs overlap vs cross_stage give
    byte-identical model parameters after N training steps."""

    @pytest.mark.parametrize("compress_backward", [False, True])
    def test_parameters_byte_identical_across_overlap_modes(self, compress_backward):
        dataset, config, plan = _tiny_workflow(n_ranks=4)
        snapshots = {}
        for overlap in (False, True, "cross_stage"):
            _, trainer, losses = _train(
                config,
                dataset,
                plan,
                overlap=overlap,
                compress_backward=compress_backward,
            )
            snapshots[overlap] = (
                [p.data.tobytes() for p in trainer.model.parameters()],
                losses,
            )
        base_params, base_losses = snapshots[False]
        for overlap in (True, "cross_stage"):
            params, losses = snapshots[overlap]
            assert losses == base_losses
            assert params == base_params  # byte-identical weights

    def test_uncompressed_trainer_bit_identical_too(self):
        dataset, config, _ = _tiny_workflow(n_ranks=4)
        snapshots = {}
        for overlap in (False, "cross_stage"):
            _, trainer, losses = _train(config, dataset, None, overlap=overlap)
            snapshots[overlap] = (
                [p.data.tobytes() for p in trainer.model.parameters()],
                losses,
            )
        assert snapshots[False] == snapshots["cross_stage"]


class TestCrossStageTiming:
    def test_cross_stage_never_loses_to_within_exchange_overlap(self):
        dataset, config, plan = _tiny_workflow(n_ranks=4)
        overlapped, _, _ = _train(config, dataset, plan, overlap=True)
        cross, _, _ = _train(config, dataset, plan, overlap="cross_stage")
        assert cross.makespan() <= overlapped.makespan() + 1e-12

    def test_cross_stage_strictly_beats_sequential(self):
        dataset, config, plan = _tiny_workflow(n_ranks=8)
        sequential, _, _ = _train(config, dataset, plan, overlap=False, n_ranks=8)
        cross, _, _ = _train(config, dataset, plan, overlap="cross_stage", n_ranks=8)
        assert cross.makespan() < sequential.makespan()

    def test_backward_wire_overlaps_bottom_mlp_backward(self):
        """The backward exchange's wire must double-book with bottom-MLP
        backward kernels on at least one rank — the cross-stage overlap."""
        dataset, config, plan = _tiny_workflow(n_ranks=4)
        sim, _, _ = _train(config, dataset, plan, overlap="cross_stage")
        wire = sim.timeline.events_in_category(EventCategory.ALLTOALL_BWD)
        mlp = sim.timeline.events_in_category(EventCategory.BOTTOM_MLP_BWD)
        assert any(
            w.rank == m.rank and w.start < m.end and m.start < w.end
            for w in wire
            for m in mlp
        )

    def test_sequential_mode_keeps_wire_and_mlp_disjoint(self):
        dataset, config, plan = _tiny_workflow(n_ranks=4)
        sim, _, _ = _train(config, dataset, plan, overlap=False)
        wire = sim.timeline.events_in_category(EventCategory.ALLTOALL_BWD)
        mlp = sim.timeline.events_in_category(EventCategory.BOTTOM_MLP_BWD)
        assert not any(
            w.rank == m.rank and w.start < m.end - 1e-15 and m.start < w.end - 1e-15
            for w in wire
            for m in mlp
        )

    def test_compressed_backward_cross_stage_never_loses(self):
        dataset, config, plan = _tiny_workflow(n_ranks=4)
        overlapped, _, _ = _train(
            config, dataset, plan, overlap=True, compress_backward=True
        )
        cross, _, _ = _train(
            config, dataset, plan, overlap="cross_stage", compress_backward=True
        )
        assert cross.makespan() <= overlapped.makespan() + 1e-12


class TestKnobValidation:
    def test_bad_overlap_value_rejected(self):
        dataset, config, _ = _tiny_workflow(n_ranks=4)
        with pytest.raises(ValueError, match="overlap"):
            HybridParallelTrainer(
                DLRM(config), dataset, ClusterSimulator(4), overlap="both"
            )

    def test_bad_pipeline_chunks_rejected(self):
        dataset, config, _ = _tiny_workflow(n_ranks=4)
        with pytest.raises(ValueError):
            HybridParallelTrainer(
                DLRM(config), dataset, ClusterSimulator(4), pipeline_chunks=0
            )

    def test_no_direct_simulator_charging_for_communication(self):
        """Grep-pin: the trainer issues every exchange through the
        Communicator — no direct collective or stream charging."""
        from repro.train import hybrid

        source = inspect.getsource(hybrid.HybridParallelTrainer)
        assert "simulator.collective" not in source
        assert "stream_compute" not in source
