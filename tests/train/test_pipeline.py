"""Tests for the compression pipeline (stages ① and ④)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive import (
    AdaptiveController,
    OfflineAnalyzer,
    StepwiseDecay,
)
from repro.train.pipeline import CompressionPipeline
from tests.conftest import make_gaussian_batch, make_hot_batch


@pytest.fixture
def controller(rng) -> AdaptiveController:
    samples = {0: make_hot_batch(rng), 1: make_gaussian_batch(rng)}
    plan = OfflineAnalyzer().analyze(samples)
    return AdaptiveController(plan, StepwiseDecay(2.0, 50, n_steps=2))


class TestCompressDecompress:
    def test_roundtrip_within_effective_bound(self, controller, rng):
        pipeline = CompressionPipeline(controller)
        rows = make_hot_batch(rng, batch=64)
        for iteration in (0, 25, 100):
            out = pipeline.roundtrip(0, rows, iteration)
            bound = controller.error_bound(0, iteration)
            assert np.abs(rows - out).max() <= bound + 1e-5

    def test_stats_recorded(self, controller, rng):
        pipeline = CompressionPipeline(controller)
        rows = make_hot_batch(rng, batch=64)
        pipeline.compress_slice(0, rows, 3)
        pipeline.compress_slice(1, rows, 3)
        assert len(pipeline.stats) == 2
        assert pipeline.stats[0].table_id == 0
        assert pipeline.stats[0].iteration == 3
        assert pipeline.stats[0].ratio > 1.0

    def test_mean_ratio_filters_by_table(self, controller, rng):
        pipeline = CompressionPipeline(controller)
        pipeline.compress_slice(0, make_hot_batch(rng, batch=64), 0)
        pipeline.compress_slice(1, make_gaussian_batch(rng, batch=64), 0)
        overall = pipeline.mean_ratio()
        t0 = pipeline.mean_ratio(table_id=0)
        t1 = pipeline.mean_ratio(table_id=1)
        assert min(t0, t1) <= overall <= max(t0, t1)

    def test_mean_ratio_empty_rejected(self, controller):
        with pytest.raises(ValueError):
            CompressionPipeline(controller).mean_ratio()

    def test_clear_stats(self, controller, rng):
        pipeline = CompressionPipeline(controller)
        pipeline.compress_slice(0, make_hot_batch(rng, batch=16), 0)
        pipeline.clear_stats()
        assert pipeline.stats == []

    def test_decay_loosens_early_bounds(self, controller, rng):
        """Early iterations use a larger bound -> smaller payloads."""
        pipeline = CompressionPipeline(controller)
        rows = make_gaussian_batch(rng, batch=256)
        early = pipeline.compress_slice(1, rows, 0)
        late = pipeline.compress_slice(1, rows, 100)
        assert len(early) <= len(late)

    def test_codec_follows_plan(self, controller, rng):
        from repro.compression.base import parse_payload

        pipeline = CompressionPipeline(controller)
        payload = pipeline.compress_slice(0, make_hot_batch(rng, batch=32), 0)
        header, _ = parse_payload(payload)
        assert header["codec"] == controller.compressor_name(0)


class TestTimingModel:
    def test_fused_faster_than_chunked(self, controller):
        fused = CompressionPipeline(controller, fused_kernels=True)
        chunked = CompressionPipeline(controller, fused_kernels=False)
        chunks = [("vector_lz", 2**20)] * 16
        assert fused.compression_seconds(chunks) < chunked.compression_seconds(chunks)
        assert fused.decompression_seconds(chunks) < chunked.decompression_seconds(chunks)

    def test_mixed_codecs_priced_separately(self, controller):
        pipeline = CompressionPipeline(controller)
        both = pipeline.compression_seconds(
            [("vector_lz", 2**20), ("entropy", 2**20)]
        )
        lz_only = pipeline.compression_seconds([("vector_lz", 2**20)])
        assert both > lz_only

    def test_empty_chunks_cost_nothing(self, controller):
        pipeline = CompressionPipeline(controller)
        assert pipeline.compression_seconds([]) == 0.0
        assert pipeline.decompression_seconds([]) == 0.0
