"""Wiring tests: CodecExecutor + ExchangeAutotuner through the trainer.

The raw-speed tier must be numerics-neutral: attaching an executor changes
*where* slices compress (which workers), never *what* bytes go on the wire,
so two trainers that differ only in worker count produce bit-identical
losses and wire accounting.  The autotuner changes only scheduling
(pipeline chunk counts), pinned here too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive import AdaptiveController, OfflineAnalyzer, StepwiseDecay
from repro.compression.parallel import CodecExecutor, ExchangeAutotuner
from repro.data import SyntheticClickDataset, make_uniform_spec
from repro.dist import ClusterSimulator
from repro.model import DLRM, DLRMConfig
from repro.train import CompressionPipeline, HybridParallelTrainer


@pytest.fixture(scope="module")
def world():
    spec = make_uniform_spec("t", n_tables=6, cardinality=200, zipf_exponent=1.4)
    dataset = SyntheticClickDataset(spec, seed=11, teacher_scale=3.0)
    config = DLRMConfig.from_dataset(
        spec, embedding_dim=8, bottom_hidden=(16,), top_hidden=(16,), seed=12
    )
    model = DLRM(config)
    batch = dataset.batch(128, batch_index=777)
    samples = {j: model.lookup(j, batch.sparse[:, j]) for j in range(config.n_tables)}
    plan = OfflineAnalyzer().analyze(samples)
    return dataset, config, plan


def _run(dataset, config, plan, *, executor=None, autotuner=None, iterations=4):
    sim = ClusterSimulator(4)
    controller = AdaptiveController(plan, StepwiseDecay(2.0, 10, n_steps=2))
    pipe = CompressionPipeline(controller)
    trainer = HybridParallelTrainer(
        DLRM(config),
        dataset,
        sim,
        pipeline=pipe,
        lr=0.2,
        autotuner=autotuner,
        codec_executor=executor,
    )
    report = trainer.train(iterations, 64)
    return trainer, report


class TestExecutorWiring:
    def test_worker_count_is_numerics_neutral(self, world):
        """workers=1 vs workers=3: identical losses, identical wire bytes."""
        dataset, config, plan = world
        with CodecExecutor(1) as serial, CodecExecutor(3, backend="thread") as parallel:
            _, rep1 = _run(dataset, config, plan, executor=serial)
            _, rep3 = _run(dataset, config, plan, executor=parallel)
        np.testing.assert_array_equal(rep1.history.losses, rep3.history.losses)
        assert rep1.forward_wire_bytes == rep3.forward_wire_bytes

    def test_executor_without_pipeline_rejected(self, world):
        dataset, config, _ = world
        with pytest.raises(ValueError, match="pipeline"):
            HybridParallelTrainer(
                DLRM(config),
                dataset,
                ClusterSimulator(4),
                codec_executor=CodecExecutor(1),
            )

    def test_executor_still_compresses_the_wire(self, world):
        dataset, config, plan = world
        with CodecExecutor(2, backend="thread") as executor:
            _, report = _run(dataset, config, plan, executor=executor)
        assert report.forward_wire_bytes < report.forward_raw_bytes


class TestAutotunerWiring:
    def test_autotuner_observes_every_forward_exchange(self, world):
        dataset, config, plan = world
        tuner = ExchangeAutotuner()
        trainer, _ = _run(dataset, config, plan, autotuner=tuner, iterations=5)
        assert tuner.observations == 5
        decision = tuner.recommend()
        assert decision.observations == 5
        assert trainer._tuned_chunk_cap() == decision.pipeline_chunks

    def test_autotuner_is_numerics_neutral(self, world):
        """Tuned chunking reschedules the exchange; the losses are
        untouched."""
        dataset, config, plan = world
        _, plain = _run(dataset, config, plan)
        _, tuned = _run(dataset, config, plan, autotuner=ExchangeAutotuner())
        np.testing.assert_array_equal(plain.history.losses, tuned.history.losses)

    def test_autotuner_feeds_pipeline_parallelism(self, world):
        dataset, config, plan = world
        tuner = ExchangeAutotuner(worker_ladder=(1, 2, 4))
        with CodecExecutor(4, backend="thread") as executor:
            trainer, _ = _run(dataset, config, plan, executor=executor, autotuner=tuner)
        assert trainer.pipeline.autotuner is tuner
        assert trainer.pipeline._tuned_parallelism() in (1, 2, 4)
