"""Tests for the reference and hybrid-parallel trainers.

The load-bearing test here is the *equivalence* one: the hybrid-parallel
simulation must produce bit-identical losses to the single-process
reference trainer (with the matching lossy hook), because they share all
arithmetic by construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive import AdaptiveController, OfflineAnalyzer, StepwiseDecay
from repro.data import SyntheticClickDataset, make_uniform_spec
from repro.dist import ClusterSimulator, EventCategory
from repro.model import DLRM, DLRMConfig
from repro.train import (
    CompressionPipeline,
    HybridParallelTrainer,
    ReferenceTrainer,
    ShardingPlan,
)


@pytest.fixture(scope="module")
def small_world():
    spec = make_uniform_spec("t", n_tables=6, cardinality=200, zipf_exponent=1.4)
    dataset = SyntheticClickDataset(spec, seed=11, teacher_scale=3.0)
    config = DLRMConfig.from_dataset(
        spec, embedding_dim=8, bottom_hidden=(16,), top_hidden=(16,), seed=12
    )
    return spec, dataset, config


def _make_plan(dataset, config, batch=128):
    model = DLRM(config)
    b = dataset.batch(batch, batch_index=777)
    samples = {j: model.lookup(j, b.sparse[:, j]) for j in range(config.n_tables)}
    return OfflineAnalyzer().analyze(samples)


class TestReferenceTrainer:
    def test_loss_decreases(self, small_world):
        _, dataset, config = small_world
        trainer = ReferenceTrainer(DLRM(config), dataset, lr=0.3)
        history = trainer.train(60, 64)
        assert np.mean(history.losses[-10:]) < np.mean(history.losses[:10])

    def test_eval_recorded(self, small_world):
        _, dataset, config = small_world
        trainer = ReferenceTrainer(DLRM(config), dataset, lr=0.3)
        history = trainer.train(10, 32, eval_every=5, eval_batches=1)
        assert history.eval_iterations == [4, 9]
        assert len(history.accuracies) == 2

    def test_adagrad_variant(self, small_world):
        _, dataset, config = small_world
        trainer = ReferenceTrainer(DLRM(config), dataset, lr=0.05, optimizer="adagrad")
        history = trainer.train(30, 64)
        assert np.mean(history.losses[-5:]) < np.mean(history.losses[:5])

    def test_lookup_transform_applied(self, small_world):
        _, dataset, config = small_world
        calls = []

        def spy(table_id, rows, iteration):
            calls.append((table_id, iteration))
            return rows

        trainer = ReferenceTrainer(DLRM(config), dataset, lr=0.1, lookup_transform=spy)
        trainer.train(2, 16)
        assert (0, 0) in calls and (5, 1) in calls

    def test_tight_compression_barely_changes_training(self, small_world):
        """With a tiny error bound the lossy run tracks the exact run."""
        _, dataset, config = small_world
        exact = ReferenceTrainer(DLRM(config), dataset, lr=0.2)
        h_exact = exact.train(20, 64)

        from repro.compression import HybridCompressor

        codec = HybridCompressor()

        def lossy(table_id, rows, iteration):
            return codec.decompress(codec.compress(rows, 1e-6))

        noisy = ReferenceTrainer(DLRM(config), dataset, lr=0.2, lookup_transform=lossy)
        h_noisy = noisy.train(20, 64)
        np.testing.assert_allclose(h_exact.losses, h_noisy.losses, atol=1e-4)

    def test_invalid_optimizer(self, small_world):
        _, dataset, config = small_world
        with pytest.raises(ValueError):
            ReferenceTrainer(DLRM(config), dataset, lr=0.1, optimizer="adam")


class TestHybridTrainer:
    def test_matches_reference_exactly_without_compression(self, small_world):
        """Hybrid-parallel numerics == single-process numerics."""
        _, dataset, config = small_world
        ref = ReferenceTrainer(DLRM(config), dataset, lr=0.2)
        h_ref = ref.train(8, 64)
        sim = ClusterSimulator(4)
        hyb = HybridParallelTrainer(DLRM(config), dataset, sim, lr=0.2)
        rep = hyb.train(8, 64)
        np.testing.assert_allclose(h_ref.losses, rep.history.losses, rtol=1e-12)

    def test_matches_reference_with_compression(self, small_world):
        """With the same controller, the hybrid run's losses equal the
        reference run that applies the identical per-slice round-trip."""
        _, dataset, config = small_world
        plan = _make_plan(dataset, config)
        n_ranks, batch = 4, 64
        local = batch // n_ranks

        # Hybrid run.
        sim = ClusterSimulator(n_ranks)
        controller = AdaptiveController(plan, StepwiseDecay(2.0, 10, n_steps=2))
        pipe = CompressionPipeline(controller)
        hyb = HybridParallelTrainer(DLRM(config), dataset, sim, pipeline=pipe, lr=0.2)
        rep = hyb.train(6, batch)

        # Reference run with per-destination-slice round-trips.
        controller2 = AdaptiveController(plan, StepwiseDecay(2.0, 10, n_steps=2))
        pipe2 = CompressionPipeline(controller2)

        def per_slice_roundtrip(table_id, rows, iteration):
            parts = [
                pipe2.roundtrip(table_id, rows[r * local : (r + 1) * local], iteration)
                for r in range(n_ranks)
            ]
            return np.concatenate(parts, axis=0)

        ref = ReferenceTrainer(
            DLRM(config), dataset, lr=0.2, lookup_transform=per_slice_roundtrip
        )
        h_ref = ref.train(6, batch)
        np.testing.assert_allclose(h_ref.losses, rep.history.losses, rtol=1e-10)

    def test_compression_reduces_wire_bytes(self, small_world):
        _, dataset, config = small_world
        plan = _make_plan(dataset, config)
        sim = ClusterSimulator(4)
        pipe = CompressionPipeline(AdaptiveController(plan))
        trainer = HybridParallelTrainer(DLRM(config), dataset, sim, pipeline=pipe, lr=0.2)
        report = trainer.train(3, 64)
        assert report.forward_wire_bytes < report.forward_raw_bytes
        assert report.forward_compression_ratio > 1.5

    def test_timeline_has_pipeline_stages(self, small_world):
        _, dataset, config = small_world
        plan = _make_plan(dataset, config)
        sim = ClusterSimulator(4)
        pipe = CompressionPipeline(AdaptiveController(plan))
        trainer = HybridParallelTrainer(DLRM(config), dataset, sim, pipeline=pipe, lr=0.2)
        trainer.train(2, 64)
        cats = set(sim.timeline.total_by_category())
        assert EventCategory.COMPRESS in cats
        assert EventCategory.DECOMPRESS in cats
        assert EventCategory.METADATA in cats
        assert EventCategory.ALLTOALL_FWD in cats
        assert EventCategory.ALLTOALL_BWD in cats

    def test_no_pipeline_timeline_has_no_compression(self, small_world):
        _, dataset, config = small_world
        sim = ClusterSimulator(4)
        trainer = HybridParallelTrainer(DLRM(config), dataset, sim, lr=0.2)
        trainer.train(2, 64)
        cats = set(sim.timeline.total_by_category())
        assert EventCategory.COMPRESS not in cats
        assert EventCategory.METADATA not in cats

    def test_indivisible_batch_rejected(self, small_world):
        _, dataset, config = small_world
        trainer = HybridParallelTrainer(DLRM(config), dataset, ClusterSimulator(4), lr=0.2)
        with pytest.raises(ValueError, match="divisible"):
            trainer.train_step(66, 0)

    def test_custom_sharding_round_robin(self, small_world):
        _, dataset, config = small_world
        sim = ClusterSimulator(2)
        sharding = ShardingPlan.round_robin(config.n_tables, 2)
        trainer = HybridParallelTrainer(
            DLRM(config), dataset, sim, lr=0.2, sharding=sharding
        )
        report = trainer.train(2, 32)
        assert len(report.history.losses) == 2

    def test_mismatched_sharding_rejected(self, small_world):
        _, dataset, config = small_world
        bad = ShardingPlan.round_robin(3, 2)  # wrong table count
        with pytest.raises(ValueError, match="sharding"):
            HybridParallelTrainer(
                DLRM(config), dataset, ClusterSimulator(2), lr=0.2, sharding=bad
            )

    def test_backward_compression_path(self, small_world):
        _, dataset, config = small_world
        plan = _make_plan(dataset, config)
        sim = ClusterSimulator(2)
        pipe = CompressionPipeline(AdaptiveController(plan), compress_backward=True)
        trainer = HybridParallelTrainer(DLRM(config), dataset, sim, pipeline=pipe, lr=0.2)
        report = trainer.train(3, 32)
        # Training still converging-ish (losses finite and sane).
        assert all(np.isfinite(report.history.losses))

    def test_report_breakdown_fractions_sum_to_one(self, small_world):
        _, dataset, config = small_world
        sim = ClusterSimulator(4)
        trainer = HybridParallelTrainer(DLRM(config), dataset, sim, lr=0.2)
        report = trainer.train(2, 64)
        fractions = report.breakdown_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_single_rank_degenerates_cleanly(self, small_world):
        _, dataset, config = small_world
        sim = ClusterSimulator(1)
        trainer = HybridParallelTrainer(DLRM(config), dataset, sim, lr=0.2)
        report = trainer.train(2, 32)
        assert report.n_ranks == 1
        assert all(np.isfinite(report.history.losses))
