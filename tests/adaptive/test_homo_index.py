"""Tests for the Homogenization Index (Eq. 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive.homo_index import count_patterns, homogenization_index


class TestCountPatterns:
    def test_all_unique(self):
        assert count_patterns(np.arange(12).reshape(4, 3)) == 4

    def test_all_identical(self):
        assert count_patterns(np.ones((10, 3))) == 1

    def test_empty(self):
        assert count_patterns(np.zeros((0, 3))) == 0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            count_patterns(np.arange(5))


class TestHomogenizationIndex:
    def test_no_homogenization_on_spread_rows(self):
        rows = np.arange(40, dtype=np.float32).reshape(10, 4)
        result = homogenization_index(rows, error_bound=0.01)
        assert result.homo_index == 0.0
        assert result.pattern_ratio == 1.0

    def test_full_homogenization_with_huge_bound(self):
        rng = np.random.default_rng(0)
        rows = rng.normal(0, 0.01, size=(20, 4)).astype(np.float32)
        result = homogenization_index(rows, error_bound=10.0)
        assert result.n_quantized == 1
        assert result.homo_index == pytest.approx((20 - 1) / 20)

    def test_jittered_clusters_homogenize(self):
        rng = np.random.default_rng(1)
        centroids = rng.normal(0, 0.5, size=(5, 8))
        rows = (centroids[rng.integers(0, 5, 64)] + rng.normal(0, 1e-4, (64, 8))).astype(np.float32)
        result = homogenization_index(rows, error_bound=0.01)
        assert result.n_original > result.n_quantized
        assert result.n_quantized <= 5 * 2  # clusters may straddle a bin edge
        assert 0 < result.homo_index <= 1

    def test_index_plus_ratio_is_one(self):
        rng = np.random.default_rng(2)
        rows = rng.normal(0, 0.1, size=(32, 4)).astype(np.float32)
        result = homogenization_index(rows, 0.05)
        assert result.homo_index + result.pattern_ratio == pytest.approx(1.0)

    def test_paper_table3_example(self):
        """Homo-index arithmetic matches Table III's first row: 110 original
        patterns, 68 after quantization."""
        from repro.adaptive.homo_index import HomoIndexResult

        r = HomoIndexResult(n_original=110, n_quantized=68, batch_size=128, error_bound=0.01)
        assert r.pattern_ratio == pytest.approx(0.618182, abs=1e-6)
        assert r.homo_index == pytest.approx(1 - 0.618182, abs=1e-6)

    def test_monotone_in_error_bound(self):
        """Larger bounds can only merge more patterns."""
        rng = np.random.default_rng(3)
        rows = rng.normal(0, 0.2, size=(64, 4)).astype(np.float32)
        counts = [
            homogenization_index(rows, eb).n_quantized for eb in (0.001, 0.01, 0.1, 1.0)
        ]
        assert counts == sorted(counts, reverse=True)

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            homogenization_index(np.zeros((2, 2)), 0.0)

    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=1e-3, max_value=1.0),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_bounds_property(self, n, d, eb, seed):
        rng = np.random.default_rng(seed)
        rows = rng.normal(0, 0.3, size=(n, d)).astype(np.float32)
        result = homogenization_index(rows, eb)
        assert 0 <= result.homo_index <= 1
        assert 0 < result.pattern_ratio <= 1
        assert 1 <= result.n_quantized <= result.n_original <= n
