"""Tests for automated global error-bound selection."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive.autotune import autotune_global_error_bound


def step_world(threshold: float, baseline: float = 0.80, drop: float = 0.05):
    """Accuracy holds at baseline until ``threshold``, then falls off."""

    def evaluate(bound: float) -> tuple[float, float]:
        accuracy = baseline if bound <= threshold else baseline - drop
        ratio = 3.0 + 10.0 * bound  # larger bound compresses better
        return accuracy, ratio

    return evaluate


class TestAutotune:
    def test_finds_bound_below_threshold(self):
        result = autotune_global_error_bound(
            step_world(0.03), baseline_accuracy=0.80, accuracy_tolerance=0.01,
            lower=1e-3, upper=0.3, max_trials=12,
        )
        assert result.feasible
        assert result.chosen <= 0.03
        # Bisection should get within a factor ~1.6 of the true threshold.
        assert result.chosen > 0.03 / 2

    def test_upper_acceptable_short_circuits(self):
        result = autotune_global_error_bound(
            step_world(1.0), baseline_accuracy=0.80, accuracy_tolerance=0.01,
            lower=1e-3, upper=0.2,
        )
        assert result.feasible
        assert result.chosen == 0.2
        assert len(result.trials) == 1

    def test_infeasible_flagged(self):
        result = autotune_global_error_bound(
            step_world(1e-9), baseline_accuracy=0.80, accuracy_tolerance=0.01,
            lower=1e-3, upper=0.2,
        )
        assert not result.feasible
        assert result.chosen == 1e-3
        assert len(result.trials) == 2

    def test_trial_budget_respected(self):
        calls = []

        def counting(bound):
            calls.append(bound)
            return step_world(0.03)(bound)

        autotune_global_error_bound(
            counting, baseline_accuracy=0.80, accuracy_tolerance=0.01,
            lower=1e-3, upper=0.3, max_trials=5,
        )
        assert len(calls) == 5

    def test_trials_recorded_with_flags(self):
        result = autotune_global_error_bound(
            step_world(0.03), baseline_accuracy=0.80, accuracy_tolerance=0.01,
            lower=1e-3, upper=0.3, max_trials=6,
        )
        assert any(t.acceptable for t in result.trials)
        assert any(not t.acceptable for t in result.trials)
        assert result.chosen_trial.acceptable

    def test_chosen_is_always_acceptable_when_feasible(self):
        result = autotune_global_error_bound(
            step_world(0.01), baseline_accuracy=0.80, accuracy_tolerance=0.01,
            lower=1e-4, upper=0.5, max_trials=10,
        )
        assert result.feasible
        assert result.chosen_trial.accuracy >= 0.80 - 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            autotune_global_error_bound(
                step_world(0.1), 0.8, lower=0.2, upper=0.1
            )
        with pytest.raises(ValueError):
            autotune_global_error_bound(
                step_world(0.1), 0.8, max_trials=1
            )
        with pytest.raises(ValueError):
            autotune_global_error_bound(
                step_world(0.1), 0.8, accuracy_tolerance=0.0
            )

    @given(
        st.floats(min_value=-3, max_value=-0.8),
        st.integers(min_value=4, max_value=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_bisection_brackets_threshold(self, log_threshold, max_trials):
        threshold = 10.0**log_threshold
        result = autotune_global_error_bound(
            step_world(threshold), baseline_accuracy=0.80, accuracy_tolerance=0.01,
            lower=1e-4, upper=0.5, max_trials=max_trials,
        )
        assert result.feasible
        assert result.chosen <= threshold
        # Bisection gap shrinks geometrically with the budget.
        gap = math.log(0.5 / 1e-4) / 2 ** (max_trials - 2)
        assert math.log(threshold / result.chosen) <= gap + 1e-9

    def test_integration_with_training(self):
        """End-to-end: tune the bound on a tiny real training world."""
        from repro.adaptive import AdaptiveController, OfflineAnalyzer
        from repro.data import SyntheticClickDataset, make_uniform_spec
        from repro.model import DLRM, DLRMConfig
        from repro.train import CompressionPipeline, ReferenceTrainer
        from repro.adaptive.classify import ErrorBoundLevels

        spec = make_uniform_spec("t", n_tables=4, cardinality=120, zipf_exponent=1.4)
        dataset = SyntheticClickDataset(spec, seed=5, teacher_scale=3.0)
        config = DLRMConfig.from_dataset(spec, embedding_dim=8, seed=6)

        def trial(bound: float) -> tuple[float, float]:
            model = DLRM(config)
            batch = dataset.batch(128, batch_index=999)
            samples = {j: model.lookup(j, batch.sparse[:, j]) for j in range(4)}
            plan = OfflineAnalyzer(
                levels=ErrorBoundLevels(large=bound, medium=bound, small=bound)
            ).analyze(samples)
            pipeline = CompressionPipeline(AdaptiveController(plan))
            trainer = ReferenceTrainer(
                DLRM(config), dataset, lr=0.3, lookup_transform=pipeline.roundtrip
            )
            history = trainer.train(40, 64, eval_every=40, eval_batches=2)
            return history.final_accuracy, pipeline.mean_ratio()

        baseline = ReferenceTrainer(DLRM(config), dataset, lr=0.3).train(
            40, 64, eval_every=40, eval_batches=2
        )
        result = autotune_global_error_bound(
            trial,
            baseline.final_accuracy,
            accuracy_tolerance=0.05,
            lower=0.005,
            upper=1.0,
            max_trials=4,
        )
        assert result.trials
        assert result.chosen > 0
        if result.feasible:
            assert result.chosen_trial.ratio > 1.0
