"""Tests for table classification and error-bound decay schedules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive.classify import (
    ClassifierThresholds,
    ErrorBoundLevels,
    classify_by_rank,
    classify_by_threshold,
)
from repro.adaptive.decay import (
    AbruptDrop,
    ConstantSchedule,
    ExponentialDecay,
    LinearDecay,
    LogarithmicDecay,
    StepwiseDecay,
    make_schedule,
)


class TestErrorBoundLevels:
    def test_paper_defaults(self):
        levels = ErrorBoundLevels()
        assert (levels.small, levels.medium, levels.large) == (0.01, 0.03, 0.05)

    def test_ordering_enforced(self):
        with pytest.raises(ValueError, match="ordered"):
            ErrorBoundLevels(large=0.01, medium=0.03, small=0.05)

    def test_from_global(self):
        levels = ErrorBoundLevels.from_global(0.03, alpha=5 / 3, beta=3.0)
        assert levels.medium == 0.03
        assert levels.large == pytest.approx(0.05)
        assert levels.small == pytest.approx(0.01)

    def test_from_global_rejects_shrinking_alpha(self):
        with pytest.raises(ValueError):
            ErrorBoundLevels.from_global(0.03, alpha=0.5)

    def test_for_category(self):
        levels = ErrorBoundLevels()
        assert levels.for_category("small") == 0.01
        assert levels.for_category("medium") == 0.03
        assert levels.for_category("large") == 0.05
        with pytest.raises(ValueError):
            levels.for_category("huge")


class TestThresholdClassifier:
    def test_algorithm1_branches(self):
        thresholds = ClassifierThresholds(small_threshold=0.25, large_threshold=0.02)
        assert classify_by_threshold(0.5, thresholds) == "small"
        assert classify_by_threshold(0.01, thresholds) == "large"
        assert classify_by_threshold(0.1, thresholds) == "medium"

    def test_boundaries_are_medium(self):
        thresholds = ClassifierThresholds(small_threshold=0.25, large_threshold=0.02)
        assert classify_by_threshold(0.25, thresholds) == "medium"
        assert classify_by_threshold(0.02, thresholds) == "medium"

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            classify_by_threshold(1.5)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ClassifierThresholds(small_threshold=0.1, large_threshold=0.5)


class TestRankClassifier:
    def test_tertile_split(self):
        indices = {i: i / 8 for i in range(9)}
        result = classify_by_rank(indices)
        # Most homogenizing third -> small.
        assert all(result[i] == "small" for i in (6, 7, 8))
        assert all(result[i] == "medium" for i in (3, 4, 5))
        assert all(result[i] == "large" for i in (0, 1, 2))

    def test_all_classes_present_even_with_ties(self):
        result = classify_by_rank({i: 0.0 for i in range(6)})
        assert set(result.values()) == {"small", "medium", "large"}

    def test_deterministic_tiebreak(self):
        a = classify_by_rank({i: 0.5 for i in range(9)})
        b = classify_by_rank({i: 0.5 for i in range(9)})
        assert a == b

    def test_custom_fractions(self):
        result = classify_by_rank({i: i / 10 for i in range(10)}, small_fraction=0.1, large_fraction=0.1)
        assert sum(1 for v in result.values() if v == "small") == 1
        assert sum(1 for v in result.values() if v == "large") == 1

    def test_fraction_sum_validation(self):
        with pytest.raises(ValueError, match="sum"):
            classify_by_rank({0: 0.5}, small_fraction=0.7, large_fraction=0.7)

    def test_empty_mapping(self):
        assert classify_by_rank({}) == {}

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            classify_by_rank({0: 1.5})

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=3, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_ranking_property(self, values):
        indices = dict(enumerate(values))
        result = classify_by_rank(indices)
        # No 'large' table may have a higher index than any 'small' table.
        smalls = [values[i] for i, c in result.items() if c == "small"]
        larges = [values[i] for i, c in result.items() if c == "large"]
        if smalls and larges:
            assert min(smalls) >= max(larges) - 1e-12


class TestDecaySchedules:
    @pytest.mark.parametrize(
        "schedule",
        [
            StepwiseDecay(2.0, 100, n_steps=4),
            LinearDecay(2.0, 100),
            LogarithmicDecay(2.0, 100),
            ExponentialDecay(2.0, 100),
            AbruptDrop(2.0, 100),
        ],
    )
    def test_starts_high_ends_at_one(self, schedule):
        assert schedule(0) == pytest.approx(2.0)
        assert schedule(100) == 1.0
        assert schedule(10_000) == 1.0

    @pytest.mark.parametrize(
        "schedule",
        [
            StepwiseDecay(3.0, 64, n_steps=4),
            LinearDecay(3.0, 64),
            LogarithmicDecay(3.0, 64),
            ExponentialDecay(3.0, 64),
            AbruptDrop(3.0, 64),
        ],
    )
    def test_monotone_non_increasing(self, schedule):
        values = [schedule(i) for i in range(130)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
        assert all(v >= 1.0 for v in values)

    def test_stepwise_has_plateaus(self):
        schedule = StepwiseDecay(2.0, 100, n_steps=4)
        values = [schedule(i) for i in range(100)]
        assert len(set(np.round(values, 12))) == 4

    def test_drop_is_flat_then_one(self):
        schedule = AbruptDrop(2.0, 50)
        assert schedule(49) == 2.0
        assert schedule(50) == 1.0

    def test_logarithmic_decays_faster_than_linear_early(self):
        log_s = LogarithmicDecay(2.0, 100)
        lin_s = LinearDecay(2.0, 100)
        assert log_s(10) < lin_s(10)

    def test_constant(self):
        schedule = ConstantSchedule()
        assert schedule(0) == schedule(10**6) == 1.0

    def test_negative_iteration_rejected(self):
        with pytest.raises(ValueError):
            ConstantSchedule()(-1)

    def test_initial_scale_below_one_rejected(self):
        with pytest.raises(ValueError):
            LinearDecay(0.5, 10)

    def test_make_schedule(self):
        s = make_schedule("stepwise", initial_scale=2.0, phase_iterations=10)
        assert isinstance(s, StepwiseDecay)
        with pytest.raises(KeyError):
            make_schedule("cosine")

    def test_decay_vs_drop_mean_multiplier(self):
        """Decay spends more iterations at elevated bounds than a drop-free
        constant, but the drop holds the max throughout (Fig. 10 mechanics)."""
        decay = StepwiseDecay(2.0, 100, n_steps=4)
        drop = AbruptDrop(2.0, 100)
        mean_decay = np.mean([decay(i) for i in range(100)])
        mean_drop = np.mean([drop(i) for i in range(100)])
        assert 1.0 < mean_decay < mean_drop == 2.0
