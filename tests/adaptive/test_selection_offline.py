"""Tests for Algorithm-2 selection, the offline analyzer, and the controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive import (
    AdaptiveController,
    ErrorBoundLevels,
    OfflineAnalyzer,
    StepwiseDecay,
)
from repro.adaptive.selection import (
    PAPER_A100_PROFILE,
    CodecThroughput,
    DeviceThroughputProfile,
    select_compressor,
)
from repro.compression.entropy import EntropyCompressor
from repro.compression.vector_lz import VectorLZCompressor
from tests.conftest import make_gaussian_batch, make_hot_batch


def _candidates():
    return {"vector_lz": VectorLZCompressor(), "entropy": EntropyCompressor()}


class TestSelectCompressor:
    def test_lz_wins_on_hot_batches(self, rng):
        batch = make_hot_batch(rng, batch=512, dim=32, pool=6, unique_fraction=0.02)
        result = select_compressor(batch, _candidates(), 0.01, 4e9)
        assert result.best == "vector_lz"

    def test_candidates_sorted_by_speedup(self, rng):
        batch = make_gaussian_batch(rng)
        result = select_compressor(batch, _candidates(), 0.01, 4e9)
        speedups = [c.speedup for c in result.candidates]
        assert speedups == sorted(speedups, reverse=True)
        assert result.best == result.candidates[0].codec

    def test_slow_codec_loses_despite_ratio(self, rng):
        """Eq.-2: a higher-CR codec can lose if its throughput is poor."""
        batch = make_gaussian_batch(rng)
        # Make entropy's modelled throughput pathological.
        profile = DeviceThroughputProfile(
            codecs={
                "vector_lz": CodecThroughput(40e9, 200e9),
                "entropy": CodecThroughput(1e9, 1e9),
            }
        )
        result = select_compressor(batch, _candidates(), 0.01, 4e9, profile)
        assert result.best == "vector_lz"

    def test_bandwidth_shifts_selection(self, rng):
        """On a slower network, ratio matters more than throughput."""
        rows = rng.laplace(0.0, 0.05, size=(256, 32)).astype(np.float32)
        fast_net = select_compressor(rows, _candidates(), 0.01, 40e9)
        slow_net = select_compressor(rows, _candidates(), 0.01, 0.5e9)
        ratio_best = max(slow_net.candidates, key=lambda c: c.ratio).codec
        assert slow_net.best == ratio_best
        # On the fast network the throughput term can override ratio.
        assert fast_net.speedup_of("entropy") < slow_net.speedup_of("entropy") * 80

    def test_speedup_of_unknown_codec(self, rng):
        result = select_compressor(make_gaussian_batch(rng), _candidates(), 0.01, 4e9)
        with pytest.raises(KeyError):
            result.speedup_of("zstd")

    def test_empty_candidates_rejected(self, rng):
        with pytest.raises(ValueError):
            select_compressor(make_gaussian_batch(rng), {}, 0.01, 4e9)

    def test_paper_profile_has_measured_codecs(self):
        assert PAPER_A100_PROFILE.for_codec("vector_lz").compress == pytest.approx(40.5e9 * 1.073741824, rel=0.1)
        assert PAPER_A100_PROFILE.for_codec("entropy").decompress < PAPER_A100_PROFILE.for_codec("entropy").compress

    def test_default_profile_fallback(self):
        profile = DeviceThroughputProfile()
        assert profile.for_codec("unknown") is profile.default


class TestOfflineAnalyzer:
    @pytest.fixture
    def samples(self, rng):
        # Three regimes: hot/repetitive, clustered (homogenizing), unique.
        samples = {}
        for t in range(3):
            samples[t] = make_hot_batch(rng, batch=128, dim=16, pool=5, unique_fraction=0.05)
        centroids = rng.normal(0, 0.3, size=(6, 16)).astype(np.float32)
        for t in range(3, 6):
            rows = centroids[rng.integers(0, 6, 128)] + rng.normal(0, 1e-4, (128, 16)).astype(
                np.float32
            )
            samples[t] = rows.astype(np.float32)
        for t in range(6, 9):
            samples[t] = rng.normal(0, 0.1, size=(128, 16)).astype(np.float32)
        return samples

    def test_plan_covers_all_tables(self, samples):
        plan = OfflineAnalyzer().analyze(samples)
        assert set(plan.tables) == set(samples)

    def test_rank_classifier_produces_all_levels(self, samples):
        plan = OfflineAnalyzer().analyze(samples)
        counts = plan.category_counts()
        assert counts["small"] >= 1 and counts["medium"] >= 1 and counts["large"] >= 1

    def test_clustered_tables_get_small_bound(self, samples):
        """The strongly homogenizing tables (3-5) must rank most sensitive."""
        plan = OfflineAnalyzer().analyze(samples)
        for t in (3, 4, 5):
            assert plan.tables[t].category == "small"
            assert plan.tables[t].error_bound == plan.levels.small

    def test_threshold_classifier_mode(self, samples):
        plan = OfflineAnalyzer(classifier="threshold").analyze(samples)
        assert set(plan.tables) == set(samples)
        for t in (6, 7, 8):  # unique rows, no homogenization -> large EB
            assert plan.tables[t].category == "large"

    def test_error_bounds_follow_levels(self, samples):
        levels = ErrorBoundLevels(large=0.1, medium=0.05, small=0.005)
        plan = OfflineAnalyzer(levels=levels).analyze(samples)
        for table_plan in plan.tables.values():
            assert table_plan.error_bound == levels.for_category(table_plan.category)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            OfflineAnalyzer().analyze({})

    def test_invalid_classifier_rejected(self):
        with pytest.raises(ValueError):
            OfflineAnalyzer(classifier="kmeans")


class TestAdaptiveController:
    def test_dual_level_combination(self, rng):
        samples = {0: make_hot_batch(rng), 1: make_gaussian_batch(rng)}
        plan = OfflineAnalyzer().analyze(samples)
        controller = AdaptiveController(plan, StepwiseDecay(2.0, 100, n_steps=2))
        for t in (0, 1):
            base = plan.error_bound_for(t)
            assert controller.error_bound(t, 0) == pytest.approx(base * 2.0)
            assert controller.error_bound(t, 100) == pytest.approx(base)

    def test_default_schedule_is_constant(self, rng):
        plan = OfflineAnalyzer().analyze({0: make_gaussian_batch(rng)})
        controller = AdaptiveController(plan)
        assert controller.error_bound(0, 0) == controller.error_bound(0, 10**6)

    def test_describe_snapshot(self, rng):
        plan = OfflineAnalyzer().analyze({0: make_hot_batch(rng), 1: make_gaussian_batch(rng)})
        controller = AdaptiveController(plan)
        snapshot = controller.describe(0)
        assert set(snapshot) == {0, 1}
        codec, bound = snapshot[0]
        assert codec in ("vector_lz", "entropy")
        assert bound > 0
