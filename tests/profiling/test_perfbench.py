"""Tests for the codec throughput benchmark harness."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.profiling.perfbench import (
    PAPER_SHAPES,
    PerfRecord,
    append_run,
    compare_to_baseline,
    format_table,
    load_bench,
    load_trajectory,
    make_lookup_batch,
    run_suite,
    write_bench,
    write_trajectory,
)

TINY = {"tiny": (32, 8)}


@pytest.fixture(scope="module")
def tiny_records():
    return run_suite(TINY, repeats=1)


class TestLookupBatch:
    def test_shape_dtype_and_determinism(self):
        a = make_lookup_batch(64, 16, seed=1)
        b = make_lookup_batch(64, 16, seed=1)
        assert a.shape == (64, 16) and a.dtype == np.float32
        np.testing.assert_array_equal(a, b)

    def test_hot_rows_recur(self):
        batch = make_lookup_batch(256, 8, pool=4, cold_fraction=0.0)
        from repro.compression.quantizer import quantize_batch
        from repro.compression.vector_lz import find_vector_matches

        codes = quantize_batch(batch, 1e-2).codes
        is_match, _ = find_vector_matches(codes, 255)
        assert is_match.sum() > 200

    def test_cold_fraction_adds_literals(self):
        hot = make_lookup_batch(256, 8, pool=4, cold_fraction=0.0, seed=3)
        mixed = make_lookup_batch(256, 8, pool=4, cold_fraction=0.5, seed=3)
        from repro.compression.quantizer import quantize_batch
        from repro.compression.vector_lz import find_vector_matches

        hot_matches = find_vector_matches(quantize_batch(hot, 1e-2).codes, 255)[0].sum()
        mixed_matches = find_vector_matches(quantize_batch(mixed, 1e-2).codes, 255)[0].sum()
        assert mixed_matches < hot_matches


class TestRunSuite:
    def test_records_have_positive_timings(self, tiny_records):
        assert tiny_records
        for record in tiny_records:
            assert record.seconds > 0
            assert record.throughput_mb_s > 0
        # Every shape-swept kernel carries the requested geometry; the
        # one fabric-level row (critpath) carries its own.
        for record in tiny_records:
            if record.codec == "critpath":
                continue
            assert record.shape_name == "tiny"
            assert record.input_nbytes == 32 * 8 * 4

    def test_critpath_row_present_once(self, tiny_records):
        """The DAG-extraction row rides along regardless of the shape
        sweep — the perfbench 'critpath' satellite."""
        rows = [r for r in tiny_records if r.codec == "critpath"]
        assert len(rows) == 1
        (row,) = rows
        assert row.op == "extract"
        assert row.shape_name == "fabric8x4"
        assert row.rows == 8 and row.dim == 4  # ranks x chunks
        assert row.input_nbytes > 0  # the chrome-trace JSON payload size

    def test_reference_ops_carry_speedup(self, tiny_records):
        with_ref = [r for r in tiny_records if r.reference_seconds is not None]
        assert {(r.codec, r.op) for r in with_ref} >= {
            ("vector_lz", "decode"),
            ("huffman", "decode"),
            ("lz4_like", "encode"),
        }
        for record in with_ref:
            assert record.speedup == pytest.approx(
                record.reference_seconds / record.seconds
            )

    def test_reference_can_be_skipped(self):
        records = run_suite(TINY, repeats=1, include_reference=False)
        assert all(r.reference_seconds is None and r.speedup is None for r in records)

    def test_paper_shapes_are_the_default_geometry(self):
        assert PAPER_SHAPES["kaggle"] == (128, 32)
        assert PAPER_SHAPES["terabyte"] == (2048, 32)


class TestPersistence:
    def test_json_roundtrip(self, tiny_records, tmp_path):
        path = write_bench(tiny_records, tmp_path / "bench.json")
        loaded = load_bench(path)
        assert loaded == tiny_records
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == 1
        assert "numpy" in payload and "python" in payload

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 99, "records": []}))
        with pytest.raises(ValueError, match="schema"):
            load_bench(path)
        with pytest.raises(ValueError, match="schema"):
            load_trajectory(path)


class TestTrajectory:
    """v2 trajectory files: one run per landed change, oldest first."""

    def _runs(self, tiny_records):
        from dataclasses import replace

        older = [
            replace(r, throughput_mb_s=r.throughput_mb_s * 0.9)
            for r in tiny_records
        ]
        return [older, list(tiny_records)]

    def test_write_load_round_trip(self, tiny_records, tmp_path):
        runs = self._runs(tiny_records)
        path = write_trajectory(runs, tmp_path / "traj.json")
        loaded = load_trajectory(path)
        assert loaded == runs
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == 2
        assert all("python" in run for run in payload["runs"])

    def test_load_bench_on_trajectory_returns_latest_run(self, tiny_records, tmp_path):
        runs = self._runs(tiny_records)
        path = write_trajectory(runs, tmp_path / "traj.json")
        assert load_bench(path) == runs[-1]

    def test_load_bench_rejects_empty_trajectory(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"schema_version": 2, "runs": []}))
        with pytest.raises(ValueError, match="no runs"):
            load_bench(path)
        assert load_trajectory(path) == []

    def test_v1_file_is_a_one_run_trajectory(self, tiny_records, tmp_path):
        path = write_bench(tiny_records, tmp_path / "v1.json")
        assert load_trajectory(path) == [tiny_records]

    def test_append_migrates_v1_in_place(self, tiny_records, tmp_path):
        """The committed BENCH migration path: appending to a v1 file
        turns it into a v2 trajectory whose first run keeps the original
        records and environment stanza."""
        path = write_bench(tiny_records, tmp_path / "bench.json")
        v1_payload = json.loads(path.read_text())
        append_run(tiny_records, path)
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == 2
        assert len(payload["runs"]) == 2
        assert payload["runs"][0]["records"] == v1_payload["records"]
        assert payload["runs"][0]["python"] == v1_payload["python"]
        assert load_bench(path) == tiny_records
        assert load_trajectory(path) == [tiny_records, tiny_records]

    def test_append_creates_fresh_trajectory(self, tiny_records, tmp_path):
        path = append_run(tiny_records, tmp_path / "new.json")
        assert load_trajectory(path) == [tiny_records]
        assert json.loads(path.read_text())["schema_version"] == 2

    def test_append_extends_v2(self, tiny_records, tmp_path):
        path = tmp_path / "traj.json"
        write_trajectory([tiny_records], path)
        append_run(tiny_records, path)
        append_run(tiny_records, path)
        assert len(load_trajectory(path)) == 3

    def test_append_rejects_unknown_schema(self, tiny_records, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 7}))
        with pytest.raises(ValueError, match="schema"):
            append_run(tiny_records, path)

    def test_committed_bench_is_a_loadable_trajectory(self):
        """The repo-root BENCH_compression.json is the sentry's history;
        it must parse as a multi-run trajectory with a stable kernel set
        in its latest run."""
        from pathlib import Path

        bench = Path(__file__).resolve().parents[2] / "BENCH_compression.json"
        runs = load_trajectory(bench)
        assert len(runs) >= 3  # enough history for the sentry's min_points
        latest = {(r.codec, r.op, r.shape_name) for r in runs[-1]}
        assert ("critpath", "extract", "fabric8x4") in latest


def _record(codec="huffman", op="decode", shape="terabyte", mbps=100.0, speedup=None):
    seconds = 2048 * 32 * 4 / (mbps * 1e6)
    return PerfRecord(
        codec=codec,
        op=op,
        shape_name=shape,
        rows=2048,
        dim=32,
        input_nbytes=2048 * 32 * 4,
        seconds=seconds,
        throughput_mb_s=mbps,
        reference_seconds=None if speedup is None else seconds * speedup,
        speedup=speedup,
    )


class TestCompareToBaseline:
    def test_passes_within_band(self):
        assert compare_to_baseline([_record(mbps=40)], [_record(mbps=100)]) == []

    def test_fails_beyond_regression_factor(self):
        failures = compare_to_baseline([_record(mbps=30)], [_record(mbps=100)])
        assert len(failures) == 1
        assert "huffman.decode" in failures[0]

    def test_faster_is_always_fine(self):
        assert compare_to_baseline([_record(mbps=900)], [_record(mbps=100)]) == []

    def test_unmatched_kernels_ignored(self):
        current = [_record(codec="newcodec", mbps=1.0)]
        assert compare_to_baseline(current, [_record(mbps=100)]) == []

    def test_custom_factor(self):
        # hybrid.compress is outside TIGHTENED_GATES, so the caller's band
        # is the only gate in play.
        current = [_record(codec="hybrid", op="compress", mbps=30)]
        base = [_record(codec="hybrid", op="compress", mbps=100)]
        assert compare_to_baseline(current, base, max_regression=5.0) == []
        with pytest.raises(ValueError):
            compare_to_baseline(current, base, max_regression=1.0)

    def test_tightened_gate_beats_looser_custom_factor(self):
        """huffman.decode carries a 2.5x TIGHTENED_GATES entry; a looser
        generic band cannot loosen it."""
        current, base = [_record(mbps=30)], [_record(mbps=100)]
        failures = compare_to_baseline(current, base, max_regression=5.0)
        assert len(failures) == 1
        assert "huffman.decode" in failures[0] and "2.5" in failures[0]

    def test_slow_machine_passes_via_relative_speedup(self):
        """A uniformly slower machine (low MB/s but intact speedup vs the
        in-run reference) must not trip the cross-machine gate."""
        current = [_record(mbps=10, speedup=4.0)]
        base = [_record(mbps=100, speedup=4.2)]
        assert compare_to_baseline(current, base) == []

    def test_true_regression_fails_both_criteria(self):
        current = [_record(mbps=10, speedup=1.0)]
        base = [_record(mbps=100, speedup=4.2)]
        failures = compare_to_baseline(current, base)
        assert len(failures) == 1 and "huffman.decode" in failures[0]


class TestFormatTable:
    def test_contains_every_kernel_row(self, tiny_records):
        table = format_table(tiny_records)
        for record in tiny_records:
            assert record.codec in table and record.op in table
        assert "MB/s" in table and "speedup" in table
