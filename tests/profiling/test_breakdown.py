"""Tests for breakdown reports and run comparison."""

from __future__ import annotations

import pytest

from repro.dist.timeline import EventCategory, Timeline
from repro.profiling import breakdown_report, breakdown_rows, compare_runs


class TestBreakdownRows:
    def test_fractions_sum_to_one(self):
        seconds = {
            EventCategory.ALLTOALL_FWD: 6.0,
            EventCategory.TOP_MLP_FWD: 3.0,
            EventCategory.ALLREDUCE: 1.0,
        }
        rows = breakdown_rows(seconds)
        assert sum(f for _, _, f in rows) == pytest.approx(1.0)

    def test_zero_categories_skipped(self):
        rows = breakdown_rows({EventCategory.ALLTOALL_FWD: 1.0, EventCategory.COMPRESS: 0.0})
        labels = [label for label, _, _ in rows]
        assert "Compression" not in labels

    def test_unknown_category_included(self):
        rows = breakdown_rows({"custom_stage": 2.0})
        assert rows[0][0] == "custom_stage"

    def test_empty(self):
        assert breakdown_rows({}) == []


class TestBreakdownReport:
    def test_report_from_timeline(self):
        tl = Timeline()
        tl.record(0, EventCategory.ALLTOALL_FWD, 0.0, 0.6)
        tl.record(0, EventCategory.TOP_MLP_FWD, 0.6, 0.4)
        out = breakdown_report(tl, title="Run")
        assert "Run" in out
        assert "All-to-all (fwd)" in out
        assert "60.0%" in out
        assert "communication" in out

    def test_report_from_mapping(self):
        out = breakdown_report({EventCategory.ALLREDUCE: 1.0})
        assert "All-reduce (dense)" in out
        assert "100.0%" in out


class TestCompareRuns:
    def test_end_to_end_speedup(self):
        baseline = {EventCategory.ALLTOALL_FWD: 6.0, EventCategory.TOP_MLP_FWD: 4.0}
        optimized = {
            EventCategory.ALLTOALL_FWD: 1.0,
            EventCategory.COMPRESS: 0.5,
            EventCategory.DECOMPRESS: 0.5,
            EventCategory.METADATA: 0.2,
            EventCategory.TOP_MLP_FWD: 4.0,
        }
        summary = compare_runs(baseline, optimized)
        assert summary.end_to_end == pytest.approx(10.0 / 6.2)
        assert summary.communication == pytest.approx(6.0 / 2.2)

    def test_no_speedup_when_identical(self):
        run = {EventCategory.ALLTOALL_FWD: 2.0}
        summary = compare_runs(run, run)
        assert summary.end_to_end == 1.0
