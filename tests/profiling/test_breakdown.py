"""Tests for breakdown reports and run comparison."""

from __future__ import annotations

import pytest

from repro.dist.timeline import COMM_STREAM, EventCategory, Timeline
from repro.profiling import (
    breakdown_report,
    breakdown_rows,
    chunk_pipeline_report,
    compare_runs,
    overlap_efficiency,
    overlap_report,
)


class TestBreakdownRows:
    def test_fractions_sum_to_one(self):
        seconds = {
            EventCategory.ALLTOALL_FWD: 6.0,
            EventCategory.TOP_MLP_FWD: 3.0,
            EventCategory.ALLREDUCE: 1.0,
        }
        rows = breakdown_rows(seconds)
        assert sum(f for _, _, f in rows) == pytest.approx(1.0)

    def test_zero_categories_skipped(self):
        rows = breakdown_rows({EventCategory.ALLTOALL_FWD: 1.0, EventCategory.COMPRESS: 0.0})
        labels = [label for label, _, _ in rows]
        assert "Compression" not in labels

    def test_unknown_category_included(self):
        rows = breakdown_rows({"custom_stage": 2.0})
        assert rows[0][0] == "custom_stage"

    def test_empty(self):
        assert breakdown_rows({}) == []


class TestBreakdownReport:
    def test_report_from_timeline(self):
        tl = Timeline()
        tl.record(0, EventCategory.ALLTOALL_FWD, 0.0, 0.6)
        tl.record(0, EventCategory.TOP_MLP_FWD, 0.6, 0.4)
        out = breakdown_report(tl, title="Run")
        assert "Run" in out
        assert "All-to-all (fwd)" in out
        assert "60.0%" in out
        assert "communication" in out

    def test_report_from_mapping(self):
        out = breakdown_report({EventCategory.ALLREDUCE: 1.0})
        assert "All-reduce (dense)" in out
        assert "100.0%" in out


class TestCompareRuns:
    def test_end_to_end_speedup(self):
        baseline = {EventCategory.ALLTOALL_FWD: 6.0, EventCategory.TOP_MLP_FWD: 4.0}
        optimized = {
            EventCategory.ALLTOALL_FWD: 1.0,
            EventCategory.COMPRESS: 0.5,
            EventCategory.DECOMPRESS: 0.5,
            EventCategory.METADATA: 0.2,
            EventCategory.TOP_MLP_FWD: 4.0,
        }
        summary = compare_runs(baseline, optimized)
        assert summary.end_to_end == pytest.approx(10.0 / 6.2)
        assert summary.communication == pytest.approx(6.0 / 2.2)

    def test_no_speedup_when_identical(self):
        run = {EventCategory.ALLTOALL_FWD: 2.0}
        summary = compare_runs(run, run)
        assert summary.end_to_end == 1.0


class TestOverlapReport:
    def test_sequential_run_has_zero_overlap(self):
        tl = Timeline()
        tl.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        tl.record(0, EventCategory.ALLTOALL_FWD, 1.0, 2.0, stream=COMM_STREAM)
        report = overlap_report(tl)
        assert report[0]["overlapped"] == pytest.approx(0.0)
        assert report[0]["comm"] == pytest.approx(2.0)
        assert overlap_efficiency(tl) == 0.0

    def test_double_booked_time_counts_as_overlap(self):
        tl = Timeline()
        # 1 s of compression fully inside a 2 s wire window.
        tl.record(0, EventCategory.COMPRESS, 0.5, 1.0)
        tl.record(0, EventCategory.ALLTOALL_FWD, 0.0, 2.0, stream=COMM_STREAM)
        report = overlap_report(tl)
        assert report[0]["charged"] == pytest.approx(3.0)
        assert report[0]["busy"] == pytest.approx(2.0)
        assert report[0]["overlapped"] == pytest.approx(1.0)
        assert report[0]["efficiency"] == pytest.approx(0.5)
        assert overlap_efficiency(tl) == pytest.approx(0.5)

    def test_no_comm_means_zero_efficiency(self):
        tl = Timeline()
        tl.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        assert overlap_efficiency(tl) == 0.0

    def test_per_rank_isolation(self):
        tl = Timeline()
        tl.record(0, EventCategory.COMPRESS, 0.0, 1.0)
        tl.record(1, EventCategory.ALLTOALL_FWD, 0.0, 1.0, stream=COMM_STREAM)
        report = overlap_report(tl)
        # Concurrency across ranks is parallelism, not stream overlap.
        assert report[0]["overlapped"] == 0.0
        assert report[1]["overlapped"] == 0.0


class TestChunkPipelineReport:
    def _chunk(self, tl, rank, start, dur, chunk, exchange=0):
        tl.record(
            rank,
            EventCategory.ALLTOALL_FWD,
            start,
            dur,
            stream=COMM_STREAM,
            args={"exchange": exchange, "chunk": chunk, "chunks": 3},
        )

    def test_stall_is_the_gap_between_consecutive_chunks(self):
        tl = Timeline()
        # Chunks at [0,1], [1,2], [2.5,3.5]: one 0.5 s stall.
        self._chunk(tl, 0, 0.0, 1.0, 0)
        self._chunk(tl, 0, 1.0, 1.0, 1)
        self._chunk(tl, 0, 2.5, 1.0, 2)
        report = chunk_pipeline_report(tl)
        assert report[0]["chunks"] == 3
        assert report[0]["wire"] == pytest.approx(3.0)
        assert report[0]["stall"] == pytest.approx(0.5)

    def test_hidden_is_the_compute_covered_wire_time(self):
        tl = Timeline()
        self._chunk(tl, 0, 0.0, 1.0, 0)
        self._chunk(tl, 0, 1.0, 1.0, 1)
        # Compute covers [0.5, 1.5]: hides 1 s of the 2 s chunked wire.
        tl.record(0, EventCategory.COMPRESS, 0.5, 1.0)
        report = chunk_pipeline_report(tl)
        assert report[0]["hidden"] == pytest.approx(1.0)
        assert report[0]["hidden_fraction"] == pytest.approx(0.5)

    def test_gaps_across_exchanges_are_not_stalls(self):
        tl = Timeline()
        self._chunk(tl, 0, 0.0, 1.0, 0, exchange=0)
        self._chunk(tl, 0, 5.0, 1.0, 0, exchange=1)
        report = chunk_pipeline_report(tl)
        assert report[0]["stall"] == pytest.approx(0.0)

    def test_unchunked_timeline_yields_empty_report(self):
        tl = Timeline()
        tl.record(0, EventCategory.ALLTOALL_FWD, 0.0, 1.0, stream=COMM_STREAM)
        assert chunk_pipeline_report(tl) == {}

    def test_simulated_pipelined_exchange_hides_wire(self):
        from repro.dist import ClusterSimulator, NetworkModel

        sim = ClusterSimulator(2, network=NetworkModel(bandwidth=1e9, latency=1e-6))
        sim.comm.compressed_all_to_all(
            [[b"x" * 50_000] * 2] * 2,
            overlap=True,
            compress_seconds=[1e-3, 1e-3],
            decompress_seconds=[5e-4, 5e-4],
            chunks_per_rank=[8, 8],
        )
        report = chunk_pipeline_report(sim.timeline)
        for rank in (0, 1):
            assert report[rank]["chunks"] == 8
            assert report[rank]["hidden"] > 0.0
            assert 0.0 < report[rank]["hidden_fraction"] <= 1.0
